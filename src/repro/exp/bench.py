"""``repro bench``: a parallel, sharded, cached benchmark runner.

The runner turns a list of :class:`~repro.exp.spec.ScenarioSpec` into a
``BENCH_<name>.json`` trajectory:

* **Sharding** — specs are dealt round-robin into one shard per worker
  and executed on a ``multiprocessing`` pool.  Every spec carries its own
  deterministically derived seed (:func:`derive_seed`), so results are
  bit-identical regardless of worker count or shard assignment; the
  payload is reassembled in spec order before writing.
* **Caching** — results are keyed by ``spec_hash + git rev`` under
  ``.bench-cache/``; re-running a sweep on an unchanged tree replays from
  cache and must produce a byte-identical deterministic payload (CI's
  ``bench-smoke`` job enforces exactly that).
* **Self-measurement** — the sweep records the simulator's own speed
  (simulated nanoseconds per wall-clock second) so optimisation PRs have
  a trajectory to beat; :func:`run_simperf` appends the same metric to
  ``BENCH_simperf.json``.

Wall-clock and timestamp fields are volatile by nature and are kept in
the payload's ``meta`` section; everything outside ``meta`` is
deterministic.
"""

import hashlib
import json
import multiprocessing
import os
import subprocess
import time

from repro.exp.builder import KernelBuilder
from repro.exp.spec import ScenarioSpec
from repro.simkernel.errors import SimError

#: payload marker for BENCH trajectory files
TRAJECTORY_KIND = "repro.bench trajectory"
SIMPERF_KIND = "repro.bench simperf trajectory"

DEFAULT_CACHE_DIR = ".bench-cache"


def derive_seed(master_seed, index):
    """Deterministic per-spec seed: stable across runs, shard layouts,
    and worker counts."""
    digest = hashlib.sha256(f"{master_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def git_rev():
    """The tree's commit hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


# ----------------------------------------------------------------------
# workload execution (runs inside worker processes)
# ----------------------------------------------------------------------

def _wl_pipe(session, opts):
    from repro.workloads.pipe_bench import run_pipe_benchmark
    result = run_pipe_benchmark(session.kernel, session.policy, **opts)
    return {
        "latency_us_per_message": result.latency_us_per_message,
        "rounds": result.rounds,
        "measured_ns": result.measured_ns,
    }


def _wl_schbench(session, opts):
    from repro.workloads.schbench import run_schbench
    result = run_schbench(session.kernel, session.policy, **opts)
    return {
        "p50_us": result.p50_us,
        "p99_us": result.p99_us,
        "samples": len(result.samples_us),
    }


def _wl_fairness(session, opts):
    from repro.workloads.fairness import run_fair_share
    result = run_fair_share(session.kernel, session.policy, **opts)
    finish = result.finish_times_ns
    return {
        "max_finish_ns": max(finish.values()),
        "min_finish_ns": min(finish.values()),
        "tasks": len(finish),
    }


def _wl_hackbench(session, opts):
    from repro.workloads.hackbench import run_hackbench
    result = run_hackbench(session.kernel, session.policy, **opts)
    return {"elapsed_ns": result.elapsed_ns,
            "total_messages": result.total_messages}


def _latency_us(value):
    """NaN-safe latency cell: JSON payloads carry None, not NaN."""
    return None if value != value else round(value, 3)


def _wl_faas(session, opts):
    from repro.workloads.faas import run_faas
    result = run_faas(session.kernel, session.policy, **opts)
    return {
        "p50_us": _latency_us(result.p50_us),
        "p99_us": _latency_us(result.p99_us),
        "p999_us": _latency_us(result.p999_us),
        "long_p99_us": _latency_us(result.long_p99_us),
        "throughput_rps": round(result.throughput_rps, 3),
        "invocations": result.total_invocations,
        "offered": result.offered,
        "completed": result.completed,
        "cold_starts": result.cold_starts,
        "warm_pool": result.warm_pool,
    }


def _wl_multitenant(session, opts):
    from repro.workloads.multitenant import run_multitenant
    result = run_multitenant(session.kernel, session.policy, **opts)
    out = {
        "capacity_ns": result.capacity_ns,
        "completed": result.completed,
        "tenants": {},
    }
    for name, metrics in sorted(result.tenants.items()):
        out["tenants"][name] = {
            "runtime_ns": metrics["runtime_ns"],
            "share": round(metrics["runtime_ns"] / result.capacity_ns, 4)
            if result.capacity_ns else 0.0,
            "throttles": metrics["throttle_count"],
            "max_period_consumed_ns": metrics["max_period_consumed_ns"],
        }
    return out


WORKLOADS = {
    "pipe": _wl_pipe,
    "schbench": _wl_schbench,
    "fairness": _wl_fairness,
    "hackbench": _wl_hackbench,
    "faas": _wl_faas,
    "multitenant": _wl_multitenant,
}


def workload_names():
    """Every workload name ``run_spec`` accepts."""
    return sorted(WORKLOADS) + ["cluster"]


def run_spec(spec):
    """Execute one scenario start-to-finish; returns a deterministic
    metrics dict (no wall-clock values)."""
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    if spec.workload == "cluster":
        # Fleet episodes build their own N kernels; the spec's fleet
        # parameters all live in workload_options, so the cache key
        # (spec_hash + git rev) covers them like any other scenario.
        from repro.cluster import run_cluster_spec
        return run_cluster_spec(spec)
    runner = WORKLOADS.get(spec.workload)
    if runner is None:
        raise SimError(
            f"unknown bench workload {spec.workload!r}; registered "
            f"workloads: {', '.join(workload_names())}")
    session = KernelBuilder.session_from_spec(spec)
    metrics = runner(session, dict(spec.workload_options))
    session.stop()
    metrics["simulated_ns"] = session.kernel.now
    metrics["total_wakeups"] = session.kernel.stats.total_wakeups
    metrics["total_migrations"] = session.kernel.stats.total_migrations
    if session.telemetry is not None:
        # Windowed time-series + SLO tallies ride along in the result
        # file; everything in the summary derives from virtual time, so
        # the payload stays deterministic.
        metrics["telemetry"] = session.telemetry.summary()
    return metrics


def _run_shard(shard):
    """Worker entry: run a shard's specs sequentially.

    Returns ``(results, wall_s, simulated_ns)`` where ``results`` maps
    spec hash -> metrics.  Wall time is per-shard so the parent can
    report the simulator's own speed.
    """
    start = time.perf_counter()
    results = {}
    simulated = 0
    for spec_dict in shard:
        spec = ScenarioSpec.from_dict(spec_dict)
        metrics = run_spec(spec)
        results[spec.spec_hash()] = metrics
        simulated += metrics.get("simulated_ns", 0)
    return results, time.perf_counter() - start, simulated


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------

class BenchCache:
    """Result store keyed by (git rev, spec hash)."""

    def __init__(self, root=DEFAULT_CACHE_DIR, rev="unknown"):
        self.root = root
        self.rev = rev

    def _path(self, spec_hash):
        return os.path.join(self.root,
                            f"{self.rev[:12]}-{spec_hash[:24]}.json")

    def get(self, spec_hash):
        path = self._path(spec_hash)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("spec_hash") != spec_hash or entry.get("rev") != self.rev:
            return None
        return entry.get("metrics")

    def put(self, spec_hash, spec_dict, metrics):
        os.makedirs(self.root, exist_ok=True)
        path = self._path(spec_hash)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump({"rev": self.rev, "spec_hash": spec_hash,
                       "spec": spec_dict, "metrics": metrics}, handle)
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# the sweep runner
# ----------------------------------------------------------------------

def run_sweep(specs, name, workers=1, cache_dir=DEFAULT_CACHE_DIR,
              out_dir=".", use_cache=True, rev=None, progress=None):
    """Run a sweep of specs, sharded over ``workers`` processes.

    Writes ``BENCH_<name>.json`` into ``out_dir`` and returns the payload.
    Everything outside the payload's ``meta`` key is deterministic for a
    given (specs, git rev) pair — byte-identical across repeat runs, with
    or without cache hits, at any worker count.
    """
    start = time.perf_counter()
    specs = [ScenarioSpec.from_dict(s) if isinstance(s, dict) else s
             for s in specs]
    rev = rev if rev is not None else git_rev()
    cache = BenchCache(cache_dir, rev) if use_cache else None

    hashes = [spec.spec_hash() for spec in specs]
    metrics_by_hash = {}
    cache_hits = 0
    pending = []
    for spec, spec_hash in zip(specs, hashes):
        cached = cache.get(spec_hash) if cache is not None else None
        if cached is not None:
            metrics_by_hash[spec_hash] = cached
            cache_hits += 1
        else:
            pending.append(spec)

    shard_wall = []
    simulated_total = 0
    if pending:
        shards = [[s.to_dict() for s in pending[i::workers]]
                  for i in range(max(1, workers))]
        shards = [shard for shard in shards if shard]
        if workers > 1 and len(shards) > 1:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=len(shards)) as pool:
                shard_results = pool.map(_run_shard, shards)
        else:
            shard_results = [_run_shard(shard) for shard in shards]
        for results, wall_s, simulated in shard_results:
            metrics_by_hash.update(results)
            shard_wall.append(wall_s)
            simulated_total += simulated
        if cache is not None:
            for spec in pending:
                spec_hash = spec.spec_hash()
                cache.put(spec_hash, spec.to_dict(),
                          metrics_by_hash[spec_hash])

    results = []
    for spec, spec_hash in zip(specs, hashes):
        results.append({
            "name": spec.name,
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
            "metrics": metrics_by_hash[spec_hash],
        })
        if progress is not None:
            progress(spec, metrics_by_hash[spec_hash])

    wall_s = time.perf_counter() - start
    payload = {
        "kind": TRAJECTORY_KIND,
        "name": name,
        "git_rev": rev,
        "specs": len(specs),
        "results": results,
        # Volatile fields live under "meta": strip it before comparing
        # two runs for determinism.
        "meta": {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                          time.gmtime()),
            "wall_s": wall_s,
            "workers": workers,
            "cache_hits": cache_hits,
            "executed": len(pending),
            "shard_wall_s": shard_wall,
            "sim_ns_executed": simulated_total,
            "sim_ns_per_wall_s": (simulated_total / sum(shard_wall)
                                  if shard_wall and sum(shard_wall) > 0
                                  else None),
        },
    }
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def deterministic_payload(payload):
    """The payload minus its volatile ``meta`` section — the part that
    must be byte-identical across identical runs."""
    return {key: value for key, value in payload.items() if key != "meta"}


# ----------------------------------------------------------------------
# sweep definitions
# ----------------------------------------------------------------------

def pipe_sweep(rounds=1500, seed=0, schedulers=("cfs", "wfq"),
               name_prefix="pipe"):
    """The Table 3 grid: schedulers x {one core, two cores}."""
    specs = []
    index = 0
    for sched in schedulers:
        for label, same_core in (("one-core", True), ("two-cores", False)):
            specs.append(ScenarioSpec(
                name=f"{name_prefix}-{sched}-{label}",
                sched=sched,
                seed=derive_seed(seed, index),
                workload="pipe",
                workload_options={"rounds": rounds, "same_core": same_core},
            ))
            index += 1
    return specs


def smoke_specs(seed=0):
    """The tiny sweep behind ``repro bench --smoke``: small enough for CI,
    wide enough to cross schedulers, topologies, and workloads."""
    specs = pipe_sweep(rounds=150, seed=seed, schedulers=("cfs", "wfq"),
                       name_prefix="smoke-pipe")
    specs.append(ScenarioSpec(
        name="smoke-pipe-eevdf", sched="eevdf",
        seed=derive_seed(seed, 100),
        workload="pipe", workload_options={"rounds": 100}))
    specs.append(ScenarioSpec(
        name="smoke-fair-wfq", sched="wfq", topology="smp:4",
        seed=derive_seed(seed, 101),
        workload="fairness",
        workload_options={"tasks": 4, "work_ns": 20_000_000}))
    specs.append(ScenarioSpec(
        name="smoke-faas-serverless", sched="serverless",
        seed=derive_seed(seed, 102), workload="faas",
        workload_options={"offered_rps": 8_000, "functions": 16,
                          "max_workers": 16, "hint_fraction": 0.25,
                          "warmup_ns": 20_000_000,
                          "duration_ns": 80_000_000}))
    return specs


def default_specs(seed=0):
    """The standard sweep behind plain ``repro bench``."""
    specs = pipe_sweep(rounds=1500, seed=seed,
                       schedulers=("cfs", "wfq", "fifo", "eevdf"))
    specs.append(ScenarioSpec(
        name="schbench-cfs", sched="cfs",
        seed=derive_seed(seed, 200), workload="schbench",
        workload_options={"message_threads": 2, "workers_per_thread": 2,
                          "warmup_ns": 50_000_000,
                          "duration_ns": 200_000_000}))
    specs.append(ScenarioSpec(
        name="schbench-wfq", sched="wfq",
        seed=derive_seed(seed, 201), workload="schbench",
        workload_options={"message_threads": 2, "workers_per_thread": 2,
                          "warmup_ns": 50_000_000,
                          "duration_ns": 200_000_000}))
    specs.append(ScenarioSpec(
        name="fairness-cfs", sched="cfs",
        seed=derive_seed(seed, 202), workload="fairness",
        workload_options={"work_ns": 100_000_000}))
    specs.append(ScenarioSpec(
        name="fairness-wfq", sched="wfq",
        seed=derive_seed(seed, 203), workload="fairness",
        workload_options={"work_ns": 100_000_000}))
    specs.append(ScenarioSpec(
        name="faas-serverless", sched="serverless",
        seed=derive_seed(seed, 204), workload="faas",
        workload_options={**FAAS_BASE_OPTIONS, "offered_rps": 18_000,
                          "warmup_ns": 100_000_000,
                          "duration_ns": 900_000_000}))
    specs.append(ScenarioSpec(
        name="faas-cfs", sched="cfs",
        seed=derive_seed(seed, 204), workload="faas",
        workload_options={**FAAS_BASE_OPTIONS, "offered_rps": 18_000,
                          "warmup_ns": 100_000_000,
                          "duration_ns": 900_000_000}))
    return specs


# ----------------------------------------------------------------------
# the FaaS table (``repro bench --faas``)
# ----------------------------------------------------------------------

#: knobs shared by every FaaS scenario so the schedulers face the same
#: trace; per-spec entries override only load and episode length
FAAS_BASE_OPTIONS = {
    "functions": 64,
    "zipf_s": 1.1,
    "long_function_fraction": 0.125,
    "short_service_us": 150.0,
    "short_sigma": 0.6,
    "long_service_ms": 10.0,
    "long_sigma": 0.3,
    "cold_start_us": 250.0,
    "max_workers": 64,
    "hint_fraction": 0.25,
    "burst_factor": 2.0,
    "burst_every_ns": 250_000_000,
    "burst_len_ns": 25_000_000,
}

#: cold-start-style tail SLOs attached to the headline FaaS episodes;
#: ``repro report``-style window series + verdicts ride the bench payload
FAAS_SLOS = (
    {"name": "faas-wakeup-p99", "metric": "wakeup_p99_ns",
     "max": 2_000_000},
    {"name": "faas-rq-depth", "metric": "rq_depth_max", "max": 128},
)

#: schedulers in the FaaS comparison table
FAAS_SCHEDULERS = ("serverless", "cfs", "eevdf", "wfq", "shinjuku")


def faas_specs(seed=0, headline_invocations=1_000_000):
    """The sweep behind ``repro bench --faas``: serverless vs the field
    under sweeping load, plus a production-scale headline pair.

    Per load level every scheduler gets the *same* derived seed, so they
    face byte-identical invocation traces.  The headline serverless/cfs
    pair runs a >= ``headline_invocations`` episode with telemetry SLOs
    attached — the "millions of users" scenario at full scale.
    """
    specs = []
    for index, rps in enumerate((12_000, 15_000, 18_000)):
        for sched in FAAS_SCHEDULERS:
            specs.append(ScenarioSpec(
                name=f"faas-{sched}-{rps // 1000}k",
                sched=sched,
                seed=derive_seed(seed, 300 + index),
                workload="faas",
                workload_options={**FAAS_BASE_OPTIONS,
                                  "offered_rps": rps,
                                  "warmup_ns": 100_000_000,
                                  "duration_ns": 500_000_000}))
    # ~89% effective utilisation of the 8-CPU capacity implied by
    # FAAS_BASE_OPTIONS (E[S] ~430us, bursts add 10% on average):
    # contended enough that CFS's tail degrades by an order of
    # magnitude, stable enough that the container pool's FIFO backlog —
    # which no scheduler can reorder — does not grow without bound over
    # the minute-long episode.
    headline_rps = 15_000
    warmup_ns = 2_000_000_000
    duration_ns = int(headline_invocations / headline_rps * 1e9)
    for sched in ("serverless", "cfs"):
        specs.append(ScenarioSpec(
            name=f"faas-{sched}-headline",
            sched=sched,
            seed=derive_seed(seed, 310),
            workload="faas",
            workload_options={**FAAS_BASE_OPTIONS,
                              "offered_rps": headline_rps,
                              "warmup_ns": warmup_ns,
                              "duration_ns": duration_ns},
            telemetry_ns=50_000_000,
            slos=FAAS_SLOS))
    return specs


# ----------------------------------------------------------------------
# the multi-tenant table (``repro bench --multitenant``)
# ----------------------------------------------------------------------

#: the three-tenant contract shared by every multitenant scenario: a
#: high-weight tenant, an equal-weight noisy neighbour, and a tenant
#: capped at 20% of the machine by CPU bandwidth control
MULTITENANT_GROUPS = (
    {"name": "tenant-a", "weight": 2048},
    {"name": "tenant-b", "weight": 1024},
    {"name": "tenant-c", "weight": 1024,
     "quota_ns": 2_000_000, "period_ns": 10_000_000},
)

#: per-tenant task counts (group parameters come from the spec's groups)
MULTITENANT_TASKS = (
    {"name": "tenant-a", "tasks": 4},
    {"name": "tenant-b", "tasks": 4},
    {"name": "tenant-c", "tasks": 2},
)

#: schedulers in the multitenant comparison table
MULTITENANT_SCHEDULERS = ("cfs", "wfq", "eevdf")


def multitenant_specs(seed=0, duration_ns=200_000_000):
    """The sweep behind ``repro bench --multitenant``: the same
    three-tenant noisy-neighbour contract across schedulers, plus one
    mixed-policy scenario where each group picks its own scheduler
    (tenant-b runs under native CFS while the rest stay on the Enoki
    scheduler under test)."""
    options = {"tenants": MULTITENANT_TASKS, "duration_ns": duration_ns}
    specs = []
    for index, sched in enumerate(MULTITENANT_SCHEDULERS):
        specs.append(ScenarioSpec(
            name=f"multitenant-{sched}", sched=sched, topology="smp:4",
            seed=derive_seed(seed, 400 + index),
            groups=MULTITENANT_GROUPS,
            workload="multitenant", workload_options=options))
    # Mixed-policy scenario: tenant-b runs under the native CFS class
    # (policy 0) while a/c stay on the Enoki scheduler under test.  The
    # Enoki class outranks the native class, so without bandwidth
    # control the native tenant would starve outright (exactly the
    # RT-vs-CFS story); capping the Enoki tenants hands tenant-b the
    # residual — per-group policy choice made safe by per-group quotas.
    mixed_groups = tuple(
        dict(g, policy=0) if g["name"] == "tenant-b"
        else dict(g, quota_ns=4_000_000, period_ns=10_000_000)
        if g["name"] == "tenant-a" else dict(g)
        for g in MULTITENANT_GROUPS)
    specs.append(ScenarioSpec(
        name="multitenant-mixed-policy", sched="wfq", topology="smp:4",
        seed=derive_seed(seed, 410),
        groups=mixed_groups,
        workload="multitenant", workload_options=options))
    return specs


# ----------------------------------------------------------------------
# simulator self-benchmark
# ----------------------------------------------------------------------

#: name of the simperf sweep definition, recorded in the trajectory's
#: ``meta`` so entries from different sweep generations are attributable
SIMPERF_SWEEP = "hotpath-v2"

#: workloads in the ``--simperf`` sweep, in run order.  ``pipe`` is the
#: historical headline number (wakeup/dispatch hot loop); ``wfq-bench``
#: stresses run-queue churn, ``shinjuku-tail`` the preemption-heavy
#: single-dispatcher path, and ``fuzz-episode`` the verify stack
#: (sanitizers + oracles attached) so the observability fast path's cost
#: under observation is tracked too; ``faas`` measures the open-loop
#: invocation hot loop (spawn-on-demand pool + hint ring + two-tier
#: serverless picks).
SIMPERF_WORKLOADS = ("pipe", "wfq-bench", "shinjuku-tail", "fuzz-episode",
                     "faas")


def _simperf_spec(workload, rounds):
    """The ScenarioSpec behind one spec-driven simperf workload."""
    if workload == "pipe":
        return ScenarioSpec(
            name="simperf-pipe", sched="wfq", seed=derive_seed(0, 0),
            workload="pipe", workload_options={"rounds": rounds})
    if workload == "wfq-bench":
        return ScenarioSpec(
            name="simperf-wfq-bench", sched="wfq", topology="smp:4",
            seed=derive_seed(0, 1), workload="hackbench",
            workload_options={"groups": 2, "fds": 4,
                              "loops": max(5, rounds // 50)})
    if workload == "shinjuku-tail":
        return ScenarioSpec(
            name="simperf-shinjuku-tail", sched="shinjuku",
            topology="smp:4", seed=derive_seed(0, 2), workload="schbench",
            workload_options={"message_threads": 2,
                              "workers_per_thread": 4,
                              "warmup_ns": 20_000_000,
                              "duration_ns": max(50_000_000,
                                                 rounds * 100_000)})
    if workload == "faas":
        return ScenarioSpec(
            name="simperf-faas", sched="serverless",
            seed=derive_seed(0, 3), workload="faas",
            workload_options={**FAAS_BASE_OPTIONS,
                              "offered_rps": 20_000,
                              "warmup_ns": 20_000_000,
                              "duration_ns": max(100_000_000,
                                                 rounds * 50_000)})
    raise SimError(f"unknown simperf workload {workload!r}")


def _run_fuzz_episodes(rounds):
    """Run a fixed batch of fuzz episodes; returns (simulated_ns, extra).

    Episode sessions come from the fuzzer's warm-image cache
    (:mod:`repro.simkernel.snapshot`): the first episode of a given
    machine shape captures a pre-spawn image and every later episode —
    including across the best-of ``repeats`` loop — forks a
    byte-identical clone instead of rebuilding the session.
    """
    from repro.verify.fuzz import generate_episode, run_episode
    episodes = max(1, min(4, rounds // 500))
    simulated = 0
    for seed in range(episodes):
        result = run_episode(generate_episode(seed, sched="wfq"))
        simulated += result.sim_ns
    return simulated, {"episodes": episodes}


def _measure_simperf(workload, rounds):
    """One timed execution; returns (rate, wall_s, simulated_ns, extra)."""
    start = time.perf_counter()
    if workload == "fuzz-episode":
        simulated, extra = _run_fuzz_episodes(rounds)
    else:
        metrics = run_spec(_simperf_spec(workload, rounds))
        simulated = metrics["simulated_ns"]
        extra = {}
        if "latency_us_per_message" in metrics:
            extra["latency_us_per_message"] = \
                metrics["latency_us_per_message"]
    wall = time.perf_counter() - start
    rate = simulated / wall if wall > 0 else 0.0
    return rate, wall, simulated, extra


def load_simperf(path):
    """Read an existing simperf trajectory, or a fresh empty one."""
    trajectory = {"kind": SIMPERF_KIND, "entries": [],
                  "meta": {"sweep": SIMPERF_SWEEP}}
    try:
        with open(path) as handle:
            existing = json.load(handle)
        if existing.get("kind") == SIMPERF_KIND:
            trajectory = existing
            trajectory.setdefault("meta", {})["sweep"] = SIMPERF_SWEEP
    except (OSError, ValueError):
        pass
    return trajectory


def _simperf_key(entry):
    """The identity an entry replaces on re-append: same revision, same
    workload, *and* same measurement shape.  Including rounds/repeats
    keeps a quick ``--rounds 200`` smoke run from silently overwriting
    the committed full-depth baseline at the same revision."""
    return (entry.get("git_rev"), entry.get("workload"),
            entry.get("rounds"), entry.get("repeats"))


def append_simperf(trajectory, entry):
    """Append ``entry``, replacing any earlier entry with the same
    :func:`_simperf_key` so repeated local runs don't accumulate
    duplicates (the trajectory tracks revisions, not invocations)."""
    key = _simperf_key(entry)
    trajectory["entries"] = [
        e for e in trajectory["entries"] if _simperf_key(e) != key
    ]
    trajectory["entries"].append(entry)
    return trajectory


def run_simperf(path="BENCH_simperf.json", rounds=2000, repeats=3,
                rev=None, workloads=SIMPERF_WORKLOADS):
    """Measure the simulator itself — simulated ns per wall second — over
    the simperf sweep, appending one entry per workload to ``path``.

    These are the numbers future optimisation PRs must move: each
    workload exercises a different hot-path mix (see
    :data:`SIMPERF_WORKLOADS`).  Each entry is best-of-``repeats`` to
    shed scheduler/allocator noise; appends dedupe by
    ``(git_rev, workload)``.  Returns the list of appended entries.
    """
    rev = rev if rev is not None else git_rev()
    entries = []
    for workload in workloads:
        best = None
        for _ in range(repeats):
            rate, wall, simulated, extra = _measure_simperf(workload,
                                                            rounds)
            if best is None or rate > best["sim_ns_per_wall_s"]:
                best = {"sim_ns_per_wall_s": rate, "wall_s": wall,
                        "simulated_ns": simulated, **extra}
        entries.append({
            "git_rev": rev,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime()),
            "workload": workload,
            "rounds": rounds,
            "repeats": repeats,
            **best,
        })
    trajectory = load_simperf(path)
    for entry in entries:
        append_simperf(trajectory, entry)
    with open(path, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    return entries


def compare_simperf(trajectory, threshold=0.20, workloads=None,
                    strict=False):
    """Diff each workload's newest entry against its previous one.

    The previous entry is the committed baseline in CI (appends dedupe by
    revision, so a fresh run at a new rev sits after the baseline rev's
    entry).  Returns ``(ok, lines)`` where ``ok`` is False when any
    workload regressed by more than ``threshold`` (a fraction, 0.20 =
    20%); ``lines`` is a human-readable report.

    With ``strict`` (the ``--compare --all-workloads`` CI mode) a
    workload with no comparable pair is an *error*, not a skip: a sweep
    that silently dropped a workload would otherwise read as "no
    regressions" while measuring nothing.
    """
    if isinstance(trajectory, str):
        trajectory = load_simperf(trajectory)
    by_workload = {}
    for entry in trajectory.get("entries", []):
        by_workload.setdefault(entry.get("workload"), []).append(entry)
    if workloads is None:
        workloads = sorted(by_workload)
    ok = True
    lines = []
    for workload in workloads:
        entries = by_workload.get(workload, [])
        if len(entries) < 2:
            if strict:
                ok = False
                lines.append(
                    f"{workload}: ERROR missing entries "
                    f"({len(entries)} present, 2 needed for a "
                    "baseline comparison)")
            else:
                lines.append(f"{workload}: no baseline to compare "
                             f"({len(entries)} entry)")
            continue
        baseline, newest = entries[-2], entries[-1]
        base_rate = baseline["sim_ns_per_wall_s"]
        new_rate = newest["sim_ns_per_wall_s"]
        change = (new_rate - base_rate) / base_rate if base_rate else 0.0
        verdict = "ok"
        if change < -threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            ok = False
        lines.append(
            f"{workload}: {base_rate:,.0f} -> {new_rate:,.0f} "
            f"sim-ns/wall-s ({change:+.1%}) "
            f"[{baseline.get('git_rev', '?')[:12]} -> "
            f"{newest.get('git_rev', '?')[:12]}] {verdict}")
    return ok, lines


# ----------------------------------------------------------------------
# telemetry-overhead gate
# ----------------------------------------------------------------------

#: SLOs used by the overhead gate's telemetry-enabled run: present so the
#: SLOMonitor evaluation cost is part of what the gate measures.
OVERHEAD_SLOS = (
    {"name": "p99-wakeup", "metric": "wakeup_p99_ns", "max": 5_000_000},
    {"name": "depth", "metric": "rq_depth_max", "max": 64},
)


def run_overhead_check(threshold=0.05, rounds=2000, repeats=3, rev=None,
                       telemetry_ns=1_000_000):
    """The telemetry-overhead gate behind ``repro bench --overhead``.

    Runs the pipe simperf workload twice per repeat — once bare (the
    ``_hot`` fast path) and once with inline accounting, a 1 ms sampler,
    and SLO monitors attached — alternating so thermal/allocator drift
    hits both sides equally, then feeds the two best-of rates through the
    same :func:`compare_simperf` machinery the perf gate uses.  Fails
    (returns ``ok=False``) when the telemetry-enabled run is more than
    ``threshold`` slower in sim-ns/wall-s.
    """
    from dataclasses import replace
    rev = rev if rev is not None else git_rev()
    base_spec = _simperf_spec("pipe", rounds)
    telem_spec = replace(base_spec, name="simperf-pipe-telemetry",
                         telemetry_ns=telemetry_ns, slos=OVERHEAD_SLOS)
    best = {"hot": None, "telemetry": None}
    sides = (("hot", base_spec), ("telemetry", telem_spec))
    for _ in range(repeats):
        for key, spec in sides:
            start = time.perf_counter()
            metrics = run_spec(spec)
            wall = time.perf_counter() - start
            rate = metrics["simulated_ns"] / wall if wall > 0 else 0.0
            if best[key] is None or rate > best[key]["sim_ns_per_wall_s"]:
                best[key] = {"sim_ns_per_wall_s": rate, "wall_s": wall,
                             "simulated_ns": metrics["simulated_ns"]}
    # A two-entry trajectory makes compare_simperf treat the hot run as
    # the baseline and the telemetry run as the newest entry.
    trajectory = {"kind": SIMPERF_KIND, "meta": {"sweep": SIMPERF_SWEEP},
                  "entries": [
                      {"workload": "pipe+telemetry",
                       "git_rev": "hot-baseline", **best["hot"]},
                      {"workload": "pipe+telemetry", "git_rev": rev,
                       **best["telemetry"]},
                  ]}
    return compare_simperf(trajectory, threshold)


def run_group_overhead_check(threshold=0.05, rounds=2000, repeats=3,
                             rev=None):
    """The hierarchy-overhead gate behind ``repro bench --group-overhead``.

    Runs the pipe simperf workload three ways per repeat — flat (no task
    groups at all), with a group forest *defined* but every task still in
    the implicit root group, and with both tasks inside a weight-only
    group — alternating so drift hits all sides equally.  The gate fails
    when the defined-but-unused run is more than ``threshold`` slower
    than the flat run: flat workloads must not pay for the feature (lazy
    period timers, single ``task.group`` test per hook).  The grouped
    run's cost is reported informationally; it bounds what tenants pay
    when they opt in.
    """
    from dataclasses import replace
    rev = rev if rev is not None else git_rev()
    flat_spec = _simperf_spec("pipe", rounds)
    unused_spec = replace(
        flat_spec, name="simperf-pipe-groups-unused",
        groups=({"name": "tenant", "quota_ns": 2_000_000},))
    grouped_spec = replace(
        flat_spec, name="simperf-pipe-grouped",
        groups=({"name": "tenant"},),
        workload_options=dict(flat_spec.workload_options,
                              group="tenant"))
    best = {"flat": None, "unused": None, "grouped": None}
    sides = (("flat", flat_spec), ("unused", unused_spec),
             ("grouped", grouped_spec))
    for _ in range(repeats):
        for key, spec in sides:
            start = time.perf_counter()
            metrics = run_spec(spec)
            wall = time.perf_counter() - start
            rate = metrics["simulated_ns"] / wall if wall > 0 else 0.0
            if best[key] is None or rate > best[key]["sim_ns_per_wall_s"]:
                best[key] = {"sim_ns_per_wall_s": rate, "wall_s": wall,
                             "simulated_ns": metrics["simulated_ns"]}
    trajectory = {"kind": SIMPERF_KIND, "meta": {"sweep": SIMPERF_SWEEP},
                  "entries": [
                      {"workload": "pipe+groups",
                       "git_rev": "flat-baseline", **best["flat"]},
                      {"workload": "pipe+groups", "git_rev": rev,
                       **best["unused"]},
                  ]}
    ok, lines = compare_simperf(trajectory, threshold)
    flat_rate = best["flat"]["sim_ns_per_wall_s"]
    grouped_rate = best["grouped"]["sim_ns_per_wall_s"]
    change = ((grouped_rate - flat_rate) / flat_rate if flat_rate else 0.0)
    lines.append(f"pipe+grouped (informational): {flat_rate:,.0f} -> "
                 f"{grouped_rate:,.0f} sim-ns/wall-s ({change:+.1%})")
    return ok, lines
