"""Command-line entry point: run experiments without pytest.

Usage::

    python -m repro list                 # show available experiments
    python -m repro pipe                 # Table 3 quick run (CFS vs WFQ)
    python -m repro schbench --workers 2
    python -m repro rocksdb --load 40000
    python -m repro upgrade
    python -m repro fairness
    python -m repro trace --export chrome out.json
    python -m repro stats

These are quick single-configuration runs for exploration; the full
table/figure reproductions live in ``benchmarks/``.
"""

import argparse
import json
import sys

from repro.analysis.tables import render_table
from repro.exp import KernelBuilder
from repro.simkernel.clock import msecs

POLICY = 7


def _cfs_session(topology=None):
    return (KernelBuilder(topology=topology)
            .with_native("cfs", policy=0, priority=10).build())


def _wfq_session(topology=None):
    return (KernelBuilder(topology=topology)
            .with_native("cfs", policy=0, priority=5)
            .with_enoki("wfq", policy=POLICY, priority=10).build())


def cmd_pipe(args):
    from repro.workloads.pipe_bench import run_pipe_benchmark

    rows = []
    for name, factory in (("CFS", _cfs_session),
                          ("Enoki WFQ", _wfq_session)):
        for config, same in (("one core", True), ("two cores", False)):
            session = factory()
            result = run_pipe_benchmark(session.kernel, session.policy,
                                        rounds=args.rounds,
                                        same_core=same)
            rows.append([name, config, result.latency_us_per_message])
    print(render_table("sched-pipe (us per message)",
                       ["scheduler", "config", "latency"], rows))
    return 0


def cmd_schbench(args):
    from repro.workloads.schbench import run_schbench

    topology = "big80" if args.big else "small8"
    rows = []
    for name, factory in (("CFS", _cfs_session),
                          ("Enoki WFQ", _wfq_session)):
        session = factory(topology)
        result = run_schbench(session.kernel, session.policy,
                              message_threads=2,
                              workers_per_thread=args.workers,
                              warmup_ns=msecs(50),
                              duration_ns=msecs(args.duration_ms))
        rows.append([name, result.p50_us, result.p99_us,
                     len(result.samples_us)])
    print(render_table(
        f"schbench, 2 message threads x {args.workers} workers (us)",
        ["scheduler", "p50", "p99", "samples"], rows))
    return 0


def cmd_rocksdb(args):
    from repro.workloads.rocksdb import run_rocksdb

    rows = []
    for name in ("CFS", "Enoki-Shinjuku"):
        builder = KernelBuilder().with_native("cfs", policy=0, priority=5)
        if name == "Enoki-Shinjuku":
            builder.with_enoki("shinjuku", policy=8, priority=10,
                               worker_cpus=[3, 4, 5, 6, 7])
        session = builder.build()
        result = run_rocksdb(session.kernel, session.policy, args.load,
                             duration_ns=msecs(args.duration_ms))
        rows.append([name, result.p50_us, result.p99_us,
                     result.completed])
    print(render_table(
        f"RocksDB-style server at {args.load} req/s (GET latency, us)",
        ["scheduler", "p50", "p99", "completed"], rows))
    return 0


def cmd_faas(args):
    from repro.exp.bench import FAAS_BASE_OPTIONS, FAAS_SLOS
    from repro.workloads.faas import run_faas

    rows = []
    slo_reports = []
    for name in ("CFS", "Enoki-Serverless"):
        builder = (KernelBuilder(seed=args.seed)
                   .with_native("cfs", policy=0, priority=5))
        if name != "CFS":
            builder.with_enoki("serverless", policy=POLICY, priority=10)
        session = builder.build()
        session.attach_telemetry(msecs(10), slos=FAAS_SLOS)
        result = run_faas(session.kernel, session.policy,
                          offered_rps=args.load,
                          duration_ns=msecs(args.duration_ms),
                          warmup_ns=msecs(50), seed=args.seed,
                          scheduler_name=name, **FAAS_BASE_OPTIONS)
        session.stop()
        monitor = session.telemetry.monitor
        if monitor is not None:
            slo_reports.append((name, monitor.summary()))
        rows.append([name, result.p50_us, result.p99_us, result.p999_us,
                     f"{result.throughput_rps:,.0f}",
                     result.cold_starts, result.completed])
    print(render_table(
        f"FaaS trace at {args.load} invocations/s "
        f"(short-invocation latency, us)",
        ["scheduler", "p50", "p99", "p99.9", "rps", "cold", "completed"],
        rows))
    for name, summary in slo_reports:
        for target in summary["targets"]:
            state = ("met" if not target["violations"]
                     else f"{target['violations']} violation(s)")
            print(f"SLO[{name}] {target['name']}: {state}")
    return 0


def cmd_upgrade(args):
    from repro.workloads.schbench import run_schbench

    for label, topology in (("1-socket/8-core", "small8"),
                            ("2-socket/80-cpu", "big80")):
        session = _wfq_session(topology)
        manager = session.schedule_upgrade(at_ns=msecs(30))
        run_schbench(session.kernel, session.policy, message_threads=2,
                     workers_per_thread=2, warmup_ns=msecs(10),
                     duration_ns=msecs(80))
        report = manager.reports[0]
        print(f"{label}: live upgrade pause {report.pause_us:.2f} us "
              f"({report.transferred_tasks} tasks transferred)")
    return 0


def cmd_fairness(args):
    from repro.workloads.fairness import run_fair_share

    rows = []
    for name, factory in (("CFS", _cfs_session),
                          ("Enoki WFQ", _wfq_session)):
        session = factory()
        spread = run_fair_share(session.kernel, session.policy,
                                work_ns=msecs(200))
        session = factory()
        packed = run_fair_share(session.kernel, session.policy,
                                work_ns=msecs(200), one_core=True)
        rows.append([
            name,
            max(spread.finish_times_ns.values()) / 1e9,
            max(packed.finish_times_ns.values()) / 1e9,
            max(packed.finish_times_ns.values())
            / max(spread.finish_times_ns.values()),
        ])
    print(render_table(
        "five CPU hogs: spread vs one core (seconds)",
        ["scheduler", "spread", "one core", "ratio"], rows))
    return 0


def _observed_pipe_run(rounds, hogs, capacity):
    """Run the pipe workload (plus optional background hogs that force
    work stealing) on an Enoki WFQ kernel with the Observer attached."""
    from repro.simkernel.clock import usecs
    from repro.simkernel.program import Run, Sleep
    from repro.workloads.pipe_bench import run_pipe_benchmark

    session = _wfq_session()
    observer = session.attach_observer(capacity=capacity)

    def hog():
        for _ in range(200):
            yield Run(usecs(40))
            yield Sleep(usecs(15))

    # Background load pinned to half the cores builds uneven queues, so
    # the trace also shows balancing: steals (migrate) and rejections.
    # The hogs live in a bandwidth-capped task group, so the episode also
    # exercises throttle/refill and the per-group metrics.
    session.kernel.groups.create("hogs", quota_ns=usecs(1000),
                                 period_ns=usecs(2000))
    for i in range(hogs):
        session.spawn(hog, name=f"hog-{i}", group="hogs",
                      allowed_cpus={0, 1, 2, 3}, origin_cpu=i % 4)
    result = run_pipe_benchmark(session.kernel, session.policy,
                                rounds=rounds)
    return session.kernel, observer, result


def cmd_trace(args):
    kernel, observer, result = _observed_pipe_run(
        args.rounds, args.hogs, args.capacity)
    if args.export == "chrome":
        observer.export_chrome(args.output)
    else:
        observer.export_ftrace(args.output)
    summary = observer.summary()
    rows = [[kind, count] for kind, count in sorted(summary.items())]
    rows.append(["(dropped)", observer.dropped])
    print(render_table(
        f"trace of sched-pipe + {args.hogs} hogs "
        f"({result.latency_us_per_message:.2f} us/msg)",
        ["event kind", "count"], rows))
    print(f"wrote {args.export} trace to {args.output}")
    return 0


def cmd_stats(args):
    _kernel, observer, result = _observed_pipe_run(
        args.rounds, args.hogs, args.capacity)
    if args.json:
        observer.collect()
        print(json.dumps({
            "latency_us_per_message": result.latency_us_per_message,
            "events": dict(sorted(observer.summary().items())),
            "dropped_events": observer.dropped,
            "metrics": observer.registry.snapshot(),
        }, indent=2, sort_keys=True))
        return 0
    print(f"sched-pipe + {args.hogs} hogs: "
          f"{result.latency_us_per_message:.2f} us/msg")
    print(observer.report())
    return 0


#: default SLO targets for the telemetry CLI surfaces — generous bounds
#: that hold on a healthy kernel, so violations mean something changed
DEFAULT_SLOS = (
    {"name": "p99-wakeup", "metric": "wakeup_p99_ns", "max": 1_000_000},
    {"name": "rq-depth", "metric": "rq_depth_max", "max": 64},
)


def _telemetry_pipe_run(rounds, hogs, interval_us, on_window=None,
                        top_k=5, slos=DEFAULT_SLOS):
    """The pipe + background-hogs episode with continuous telemetry
    attached (inline accounting, windowed sampler, SLO monitors)."""
    from repro.simkernel.clock import usecs
    from repro.simkernel.program import Run, Sleep
    from repro.workloads.pipe_bench import run_pipe_benchmark

    session = _wfq_session()
    session.attach_telemetry(usecs(interval_us), slos=slos,
                             on_window=on_window, top_k=top_k)

    def hog():
        for _ in range(200):
            yield Run(usecs(40))
            yield Sleep(usecs(15))

    # Same bandwidth-capped hog group as ``repro stats``: the telemetry
    # windows then carry a per-group section (shares, throttles).
    session.kernel.groups.create("hogs", quota_ns=usecs(1000),
                                 period_ns=usecs(2000))
    for i in range(hogs):
        session.spawn(hog, name=f"hog-{i}", group="hogs",
                      allowed_cpus={0, 1, 2, 3}, origin_cpu=i % 4)
    result = run_pipe_benchmark(session.kernel, session.policy,
                                rounds=rounds)
    session.stop()
    return session, result


def cmd_top(args):
    from repro.obs.telemetry import render_top_frame

    clear = (not args.no_clear) and sys.stdout.isatty()
    frames = [0]

    def show(window):
        frames[0] += 1
        if clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_top_frame(window))
        if not clear:
            print()

    session, result = _telemetry_pipe_run(
        args.rounds, args.hogs, args.interval_us,
        on_window=show, top_k=args.tasks)
    sampler = session.telemetry
    slo = sampler.monitor.summary() if sampler.monitor else None
    violations = (sum(t["violations"] for t in slo["targets"])
                  if slo else 0)
    print(f"episode done: {frames[0]} windows "
          f"@ {args.interval_us} us, "
          f"{result.latency_us_per_message:.2f} us/msg, "
          f"{violations} SLO violation(s)")
    return 0


def cmd_report(args):
    from repro.obs.telemetry import (build_report, render_report_markdown,
                                     timeseries_csv)

    session, result = _telemetry_pipe_run(
        args.rounds, args.hogs, args.interval_us)
    report = build_report(session.kernel, session.telemetry, meta={
        "workload": "pipe+hogs",
        "rounds": args.rounds,
        "hogs": args.hogs,
        "interval_us": args.interval_us,
        "latency_us_per_message": result.latency_us_per_message,
    })
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(timeseries_csv(list(session.telemetry.windows)))
        if not args.json:
            print(f"wrote time-series CSV to {args.csv}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(render_report_markdown(report))
    return 0


def _chaos_run(plan, rounds, hogs):
    """Run the pipe workload under one fault plan; returns an outcome dict.

    The harness is the full containment stack: injector on the shim,
    containment boundary with CFS as the fallback class, and a watchdog
    escalating ``lost_task`` findings into failover — the only way tasks a
    buggy module silently dropped (e.g. via a corrupted token's pnt_err)
    ever get rescued.
    """
    from repro.simkernel.clock import usecs
    from repro.simkernel.program import Run, SendHint, Sleep
    from repro.simkernel.task import TaskState
    from repro.workloads.pipe_bench import run_pipe_benchmark

    session = _wfq_session()
    kernel, policy = session.kernel, session.policy
    injector = session.install_faults(plan)
    watchdog = session.watchdog

    upgrades = None
    if any(spec.callback == "reregister_init" for spec in plan.specs):
        upgrades = session.schedule_upgrade(at_ns=usecs(800))

    def hog():
        # Bursts longer than the 1 ms tick period so task_tick traffic
        # exists for the tick-targeting plans to hit.
        for i in range(20):
            yield Run(usecs(1_200))
            if i % 5 == 0:
                yield SendHint({"tid": None, "seq": i}, policy=policy)
            yield Sleep(usecs(200))

    for i in range(hogs):
        session.spawn(hog, name=f"hog-{i}",
                      allowed_cpus={0, 1, 2, 3}, origin_cpu=i % 4)
    result = run_pipe_benchmark(kernel, policy, rounds=rounds)
    session.stop()

    from repro.verify import check_kernel_state

    lost = [pid for pid, task in kernel.tasks.items()
            if task.state is not TaskState.DEAD]
    violations = check_kernel_state(kernel)
    boundary = session.shim.containment
    report = boundary.failover_report
    return {
        "fired": sum(injector.summary().values()),
        "panics": len(boundary.panics),
        "strikes": boundary.strikes,
        "bad_responses": boundary.bad_responses,
        "failover": (f"-> policy {report.to_policy} "
                     f"({report.transferred} tasks)" if report else "no"),
        "findings": len(watchdog.report.findings),
        "upgrade": ("aborted" if upgrades and upgrades.reports
                    and upgrades.reports[0].aborted else
                    "ok" if upgrades and upgrades.reports else "-"),
        "lost": len(lost),
        "violations": [str(v) for v in violations],
        "latency_us": result.latency_us_per_message,
    }


def cmd_chaos(args):
    from repro.core import FaultPlan

    if args.list:
        print("built-in fault plans:")
        for name in FaultPlan.builtin_names():
            print(f"  {name:16s} {FaultPlan.builtin(name).description}")
        return 0
    names = (FaultPlan.builtin_names() if args.plan == "all"
             else [args.plan])
    rows, outcomes = [], {}
    lost_total = violation_total = 0
    for name in names:
        plan = FaultPlan.builtin(name).with_seed(args.seed)
        outcome = _chaos_run(plan, rounds=args.rounds, hogs=args.hogs)
        outcomes[name] = outcome
        lost_total += outcome["lost"]
        violation_total += len(outcome["violations"])
        rows.append([name, outcome["fired"], outcome["panics"],
                     outcome["failover"], outcome["findings"],
                     outcome["upgrade"], outcome["lost"],
                     len(outcome["violations"]),
                     f"{outcome['latency_us']:.2f}"])
    ok = not lost_total and not violation_total
    if args.json:
        print(json.dumps({"ok": ok, "seed": args.seed,
                          "lost": lost_total,
                          "violations": violation_total,
                          "plans": outcomes}, indent=2))
        return 0 if ok else 1
    print(render_table(
        f"chaos: sched-pipe + {args.hogs} hogs under fault injection "
        f"(seed {args.seed})",
        ["plan", "fired", "panics", "failover", "findings", "upgrade",
         "lost", "sanitize", "us/msg"], rows))
    if not ok:
        print(f"FAIL: {lost_total} task(s) lost, "
              f"{violation_total} invariant violation(s)")
        return 1
    print("all plans contained: every task completed, invariants held")
    return 0


def cmd_fuzz(args):
    from repro.verify import fuzz_run, load_artifact, run_episode

    if args.repro:
        spec, payload = load_artifact(args.repro)
        result = run_episode(spec)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(f"replaying reproducer (seed {spec.seed}, "
                  f"{spec.sched}, {len(spec.tasks)} tasks)")
            for violation in result.violations:
                print(f"  {violation}")
            print("violation reproduced" if not result.ok
                  else "episode passed: the defect is gone")
        # A reproducer that still fails exits 1, same as the fuzz run
        # that produced it — so CI can bisect with the artifact alone.
        return 0 if result.ok else 1

    progress = None
    if not args.json:
        def progress(index, result):
            if not result.ok:
                print(f"episode {index} (seed {result.spec.seed}): "
                      f"{len(result.violations)} violation(s)")
    report = fuzz_run(args.episodes, args.seed, sched=args.sched,
                      bug=args.bug, on_episode=progress)

    artifact = None
    if report.failures and args.out:
        from repro.verify import shrink_episode, write_artifact
        failure = report.failures[0]
        shrunk = shrink_episode(failure.spec, failure)
        artifact = write_artifact(args.out, shrunk)

    if args.json:
        payload = report.to_dict()
        payload["artifact"] = artifact
        print(json.dumps(payload, indent=2))
        return 0 if report.ok else 1
    summary = report.to_dict()
    print(f"{args.episodes} episodes (master seed {args.seed}): "
          f"{len(report.failures)} failing, "
          f"{summary['replay_checked']} replay-checked, "
          f"{summary['control_checked']} control-checked, "
          f"{summary['faults_fired']} faults fired")
    for failure in report.failures[:5]:
        print(f"  seed {failure.spec.seed} ({failure.spec.sched}):")
        for violation in failure.violations[:3]:
            print(f"    {violation}")
    if artifact:
        print(f"shrunk reproducer written to {artifact}")
    if not report.ok:
        print("FAIL: invariant violations found")
        return 1
    print("all invariants held across every episode")
    return 0


def _metric_headline(metrics):
    """The one number worth a table cell, per workload."""
    if "tenants" in metrics:
        return "shares " + "/".join(
            f"{row['share'] * 100:.0f}%"
            for _, row in sorted(metrics["tenants"].items()))
    for key, fmt in (("latency_us_per_message", "{:.2f} us/msg"),
                     ("p99_us", "p99 {:.1f} us"),
                     ("max_finish_ns", "max finish {:.3f} s"),
                     ("elapsed_ns", "{:.1f} ms")):
        if key in metrics:
            value = metrics[key]
            if key in ("max_finish_ns",):
                value = value / 1e9
            elif key == "elapsed_ns":
                value = value / 1e6
            return fmt.format(value)
    return "-"


def cmd_bench(args):
    from repro.exp.bench import (compare_simperf, default_specs,
                                 faas_specs, multitenant_specs,
                                 run_group_overhead_check,
                                 run_overhead_check, run_simperf,
                                 run_sweep, smoke_specs)

    if args.overhead:
        ok, lines = run_overhead_check(threshold=args.threshold,
                                       rounds=args.rounds)
        for line in lines:
            print(line)
        if not ok:
            print("telemetry overhead above threshold")
            return 1
        return 0

    if args.group_overhead:
        ok, lines = run_group_overhead_check(threshold=args.threshold,
                                             rounds=args.rounds)
        for line in lines:
            print(line)
        if not ok:
            print("task-group overhead above threshold")
            return 1
        return 0

    if args.compare:
        from repro.exp.bench import SIMPERF_WORKLOADS
        workloads = list(SIMPERF_WORKLOADS) if args.all_workloads else None
        ok, lines = compare_simperf(args.simperf_out,
                                    threshold=args.threshold,
                                    workloads=workloads,
                                    strict=args.all_workloads)
        for line in lines:
            print(line)
        if not ok:
            print("simperf regression detected")
            return 1
        return 0

    if args.simperf:
        entries = run_simperf(args.simperf_out, rounds=args.rounds)
        for entry in entries:
            print(f"simperf[{entry['workload']}]: "
                  f"{entry['sim_ns_per_wall_s']:,.0f} simulated ns per "
                  f"wall second ({entry['rounds']} rounds, best of "
                  f"{entry['repeats']})")
        print(f"appended to {args.simperf_out}")
        return 0

    if args.faas:
        specs = faas_specs(args.seed,
                           headline_invocations=args.faas_invocations)
    elif args.multitenant:
        specs = multitenant_specs(args.seed)
    elif args.smoke:
        specs = smoke_specs(args.seed)
    else:
        specs = default_specs(args.seed)
    name = args.name if args.name else (
        "smoke" if args.smoke else "faas" if args.faas
        else "multitenant" if args.multitenant else "sweep")
    payload = run_sweep(specs, name, workers=args.workers,
                        cache_dir=args.cache_dir, out_dir=args.out_dir,
                        use_cache=not args.no_cache)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [[r["name"], r["spec"]["sched"], r["spec"]["workload"],
             _metric_headline(r["metrics"]),
             f"{r['metrics'].get('simulated_ns', 0) / 1e6:.1f}"]
            for r in payload["results"]]
    print(render_table(
        f"bench sweep '{name}' ({len(specs)} scenarios, "
        f"{args.workers} workers)",
        ["scenario", "sched", "workload", "headline", "sim ms"], rows))
    meta = payload["meta"]
    rate = meta["sim_ns_per_wall_s"]
    print(f"wall {meta['wall_s']:.2f}s, {meta['cache_hits']} cached / "
          f"{meta['executed']} executed"
          + (f", {rate:,.0f} sim-ns per wall-second" if rate else ""))
    print(f"wrote BENCH_{name}.json")
    return 0


def _cluster_spec_from_args(args):
    from repro.core.faults import FaultPlan
    from repro.exp import ClusterSpec

    fault_plan = None
    if args.faults and args.faults != "none":
        fault_plan = FaultPlan.fleet(args.faults).to_dict()
    upgrade = None
    if args.upgrade != "none":
        upgrade = {"at_round": args.upgrade_at, "mode": args.upgrade}
    return ClusterSpec(
        name="cli-cluster",
        machines=args.machines,
        topology=args.topology,
        seed=args.seed,
        sched=args.sched,
        round_ns=args.round_ns,
        max_rounds=args.rounds,
        requests={"count": args.requests, "work_ns": args.work_ns},
        fault_plan=fault_plan,
        upgrade=upgrade,
    )


def _print_cluster_result(metrics, seed):
    router = metrics["router"]
    health = metrics["health"]
    membership = {m: g["membership"]
                  for m, g in health["machines"].items()}
    rows = [[p["machine"], p["state"],
             membership.get(p["machine"],
                            membership.get(str(p["machine"]), "?")),
             p["boots"], p["dispatched"], p["completed"],
             p.get("panics", 0), p.get("failovers", 0)]
            for p in metrics["per_machine"]]
    print(render_table(
        f"cluster seed={seed}: {metrics['machines']} machines, "
        f"{metrics['rounds']} rounds",
        ["m", "state", "member", "boots", "disp", "done", "panics",
         "failovers"], rows))
    print(f"requests: {router['completed']}/{router['admitted']} "
          f"completed, {router['shed']} shed, "
          f"{router['lost_to_dead']} lost to dead machines, "
          f"{router['retries']} retries, {router['timeouts']} timeouts, "
          f"{router['hedges']} hedges, "
          f"{router['duplicate_completions']} duplicates deduped")
    print(f"latency: p50 {router['latency_p50_ns'] / 1e6:.2f} ms, "
          f"p99 {router['latency_p99_ns'] / 1e6:.2f} ms")
    for event in health["events"]:
        print(f"health: round {event['round']:4d} machine "
              f"{event['machine']} {event['action']} ({event['reason']})")
    rolling = metrics.get("rolling_upgrade")
    if rolling:
        print(f"rolling upgrade [{rolling['mode']}]: {rolling['verdict']}")
        slo = rolling.get("slo")
        if slo:
            state = "met" if slo["met"] else "VIOLATED"
            print(f"fleet SLO {slo['metric']}: {state} "
                  f"({slo['value'] / 1e6:.2f} ms vs bound "
                  f"{slo['bound'] / 1e6:.2f} ms)")
    invariant = metrics["invariant"]
    if invariant["exactly_once"]:
        print("exactly-once invariant: OK")
    else:
        print(f"exactly-once invariant: VIOLATED "
              f"({len(invariant['violations'])} finding(s))")
        for violation in invariant["violations"]:
            print(f"  - {violation['detail']}")


def cmd_cluster(args):
    from repro.exp.bench import derive_seed, run_sweep

    base = _cluster_spec_from_args(args)
    if args.seeds > 1:
        # Seed sweep: shard fleet episodes over the bench fork pool
        # (spec-hash caching included — fleet params are in the hash).
        specs = [base.with_seed(derive_seed(args.seed, i))
                 .to_scenario_spec() for i in range(args.seeds)]
        payload = run_sweep(specs, args.name, workers=args.workers,
                            cache_dir=args.cache_dir,
                            out_dir=args.out_dir,
                            use_cache=not args.no_cache)
        results = payload["results"]
    else:
        from repro.cluster import run_cluster_spec
        results = [{"metrics": run_cluster_spec(base),
                    "spec": {"seed": args.seed}}]
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    failures = 0
    for result in results:
        if not args.json:
            _print_cluster_result(result["metrics"],
                                  result["spec"]["seed"])
            print()
        if not result["metrics"]["invariant"]["exactly_once"]:
            failures += 1
    if failures:
        print(f"{failures}/{len(results)} episode(s) violated the "
              "exactly-once invariant")
        return 1
    return 0


EXPERIMENTS = {
    "bench": (cmd_bench, "parallel sharded benchmark runner: sweep "
                         "ScenarioSpecs over a process pool with "
                         "spec-hash caching"),
    "cluster": (cmd_cluster, "fault-tolerant simulated fleet: N kernels "
                             "behind a retrying router with health-driven "
                             "eviction and rolling upgrades"),
    "pipe": (cmd_pipe, "Table 3 quick run: sched-pipe CFS vs Enoki WFQ"),
    "schbench": (cmd_schbench, "Table 4 quick run: schbench latencies"),
    "rocksdb": (cmd_rocksdb, "Figure 2 quick run: dispersed load"),
    "faas": (cmd_faas, "serverless/FaaS trace quick run: CFS vs the "
                       "Enoki serverless scheduler + SLO verdicts"),
    "upgrade": (cmd_upgrade, "Section 5.7 quick run: live upgrade pause"),
    "fairness": (cmd_fairness, "Appendix A.1 quick run: fair sharing"),
    "trace": (cmd_trace, "capture a full-stack trace and export it "
                         "(chrome/ftrace)"),
    "stats": (cmd_stats, "metrics registry + per-callback latency "
                         "percentiles"),
    "top": (cmd_top, "live schedstat view: per-CPU bars, SLO status, "
                     "busiest tasks per telemetry window"),
    "report": (cmd_report, "delay-accounting + time-series episode "
                           "report (markdown, --json, --csv)"),
    "chaos": (cmd_chaos, "deterministic fault injection: run built-in "
                         "fault plans under containment"),
    "fuzz": (cmd_fuzz, "seeded simulation fuzzing under the invariant "
                       "sanitizers and differential oracles"),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiments")

    p = sub.add_parser("pipe", help=EXPERIMENTS["pipe"][1])
    p.add_argument("--rounds", type=int, default=1500)

    p = sub.add_parser("schbench", help=EXPERIMENTS["schbench"][1])
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--duration-ms", type=int, default=400)
    p.add_argument("--big", action="store_true",
                   help="use the 80-CPU topology")

    p = sub.add_parser("rocksdb", help=EXPERIMENTS["rocksdb"][1])
    p.add_argument("--load", type=int, default=40_000)
    p.add_argument("--duration-ms", type=int, default=200)

    p = sub.add_parser("faas", help=EXPERIMENTS["faas"][1])
    p.add_argument("--load", type=int, default=18_000,
                   help="offered invocations per second")
    p.add_argument("--duration-ms", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("upgrade", help=EXPERIMENTS["upgrade"][1])
    sub.add_parser("fairness", help=EXPERIMENTS["fairness"][1])

    p = sub.add_parser("trace", help=EXPERIMENTS["trace"][1])
    p.add_argument("--export", choices=["chrome", "ftrace"],
                   default="chrome")
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12,
                   help="background tasks that force work stealing")
    p.add_argument("--capacity", type=int, default=500_000,
                   help="trace ring-buffer capacity (events)")
    p.add_argument("output", nargs="?", default="trace.json")

    p = sub.add_parser("stats", help=EXPERIMENTS["stats"][1])
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12)
    p.add_argument("--capacity", type=int, default=500_000)
    p.add_argument("--json", action="store_true",
                   help="machine-readable registry snapshot on stdout")

    p = sub.add_parser("top", help=EXPERIMENTS["top"][1])
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12)
    p.add_argument("--interval-us", type=int, default=1000,
                   help="telemetry window length (simulated microseconds)")
    p.add_argument("--tasks", type=int, default=5,
                   help="busiest tasks shown per frame")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of redrawing in place")

    p = sub.add_parser("report", help=EXPERIMENTS["report"][1])
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12)
    p.add_argument("--interval-us", type=int, default=1000,
                   help="telemetry window length (simulated microseconds)")
    p.add_argument("--json", action="store_true",
                   help="full report as JSON instead of markdown")
    p.add_argument("--csv", metavar="PATH",
                   help="also export the per-window time series as CSV")

    p = sub.add_parser("chaos", help=EXPERIMENTS["chaos"][1])
    p.add_argument("--plan", default="all",
                   help="built-in plan name, or 'all' (default)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rounds", type=int, default=600)
    p.add_argument("--hogs", type=int, default=6)
    p.add_argument("--list", action="store_true",
                   help="list built-in fault plans and exit")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")

    p = sub.add_parser("fuzz", help=EXPERIMENTS["fuzz"][1])
    p.add_argument("--episodes", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sched",
                   choices=["wfq", "fifo", "eevdf", "serverless"],
                   help="pin every episode to one scheduler")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.add_argument("--out", metavar="PATH",
                   help="shrink the first failure and write a "
                        "reproducer artifact here")
    p.add_argument("--repro", metavar="PATH",
                   help="re-run a reproducer artifact instead of fuzzing")
    # Test-only: plant a known defect so the suite can prove the
    # sanitizers catch it (see tests/test_cli.py).
    p.add_argument("--bug", default="", help=argparse.SUPPRESS)

    p = sub.add_parser("cluster", help=EXPERIMENTS["cluster"][1])
    p.add_argument("--machines", type=int, default=8)
    p.add_argument("--topology", default="smp:4",
                   help="per-machine topology template")
    p.add_argument("--sched", default="wfq",
                   help="Enoki scheduler every machine runs")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--seeds", type=int, default=1,
                   help="sweep this many derived seeds through the "
                        "bench fork pool")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size for --seeds sweeps")
    p.add_argument("--faults", default="none",
                   help="fleet fault plan: "
                        "machine-crash | machine-stall | machine-loss | "
                        "double-crash | noisy-module | none")
    p.add_argument("--rounds", type=int, default=400,
                   help="max cluster rounds (hard episode bound)")
    p.add_argument("--round-ns", type=int, default=1_000_000)
    p.add_argument("--requests", type=int, default=400)
    p.add_argument("--work-ns", type=int, default=200_000)
    p.add_argument("--upgrade", default="bad-dispatch",
                   choices=("none", "good", "bad-init", "bad-dispatch"),
                   help="rolling-upgrade demo: canary first, automatic "
                        "rollback on regression (default injects a "
                        "bad module to show the rollback)")
    p.add_argument("--upgrade-at", type=int, default=40,
                   help="cluster round the canary upgrade starts at")
    p.add_argument("--name", default="cluster",
                   help="payload name for --seeds sweeps")
    p.add_argument("--out-dir", default=".")
    p.add_argument("--cache-dir", default=".bench-cache")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="print full episode payloads instead of tables")

    p = sub.add_parser("bench", help=EXPERIMENTS["bench"][1])
    p.add_argument("--smoke", action="store_true",
                   help="tiny CI-sized sweep instead of the full grid")
    p.add_argument("--faas", action="store_true",
                   help="FaaS table: serverless vs the field under "
                        "sweeping load + a production-scale headline "
                        "pair (writes BENCH_faas.json)")
    p.add_argument("--faas-invocations", type=int, default=1_000_000,
                   help="invocation count of the --faas headline episode")
    p.add_argument("--multitenant", action="store_true",
                   help="noisy-neighbour table: three tenants in "
                        "weighted, bandwidth-capped task groups across "
                        "schedulers (writes BENCH_multitenant.json)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size; results are identical at "
                        "any worker count")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; per-spec seeds are derived from it")
    p.add_argument("--name", default="",
                   help="payload name (writes BENCH_<name>.json)")
    p.add_argument("--out-dir", default=".")
    p.add_argument("--cache-dir", default=".bench-cache")
    p.add_argument("--no-cache", action="store_true",
                   help="always re-simulate, ignore cached results")
    p.add_argument("--json", action="store_true",
                   help="print the full payload instead of the table")
    p.add_argument("--simperf", action="store_true",
                   help="measure simulator speed (sim-ns per wall-second) "
                        "over the simperf workload sweep and append to "
                        "BENCH_simperf.json")
    p.add_argument("--simperf-out", default="BENCH_simperf.json")
    p.add_argument("--rounds", type=int, default=2000,
                   help="workload scale for --simperf (pipe rounds; other "
                        "workloads derive their size from it)")
    p.add_argument("--all-workloads", action="store_true",
                   help="with --compare: require every simperf sweep "
                        "workload to have a comparable entry pair; a "
                        "missing workload is an error, not a skip")
    p.add_argument("--compare", action="store_true",
                   help="diff each workload's newest simperf entry against "
                        "its previous one; exit nonzero on regression")
    p.add_argument("--threshold", type=float, default=0.20,
                   help="relative regression threshold for --compare "
                        "(0.20 = 20%%)")
    p.add_argument("--overhead", action="store_true",
                   help="measure accounting+telemetry overhead on the "
                        "pipe simperf workload vs the hot baseline; "
                        "exit nonzero above --threshold (CI passes 0.05)")
    p.add_argument("--group-overhead", action="store_true",
                   help="measure the task-group fast-path cost on the "
                        "flat pipe simperf workload; exit nonzero above "
                        "--threshold (CI passes 0.05)")

    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:")
        for name, (_fn, help_text) in EXPERIMENTS.items():
            print(f"  {name:10s} {help_text}")
        return 0
    return EXPERIMENTS[args.command][0](args)


if __name__ == "__main__":
    sys.exit(main())
