"""Command-line entry point: run experiments without pytest.

Usage::

    python -m repro list                 # show available experiments
    python -m repro pipe                 # Table 3 quick run (CFS vs WFQ)
    python -m repro schbench --workers 2
    python -m repro rocksdb --load 40000
    python -m repro upgrade
    python -m repro fairness
    python -m repro trace --export chrome out.json
    python -m repro stats

These are quick single-configuration runs for exploration; the full
table/figure reproductions live in ``benchmarks/``.
"""

import argparse
import json
import sys

from repro.analysis.tables import render_table
from repro.core import EnokiSchedClass, UpgradeManager
from repro.schedulers.cfs import CfsSchedClass
from repro.schedulers.shinjuku import EnokiShinjuku
from repro.schedulers.wfq import EnokiWfq
from repro.simkernel import Kernel, SimConfig, Topology
from repro.simkernel.clock import msecs

POLICY = 7


def _cfs_kernel(topology=None):
    kernel = Kernel(topology or Topology.small8(), SimConfig())
    kernel.register_sched_class(CfsSchedClass(policy=0), priority=10)
    return kernel, 0


def _wfq_kernel(topology=None):
    kernel = Kernel(topology or Topology.small8(), SimConfig())
    kernel.register_sched_class(CfsSchedClass(policy=0), priority=5)
    nr = kernel.topology.nr_cpus
    EnokiSchedClass.register(kernel, EnokiWfq(nr, POLICY), POLICY,
                             priority=10)
    return kernel, POLICY


def cmd_pipe(args):
    from repro.workloads.pipe_bench import run_pipe_benchmark

    rows = []
    for name, factory in (("CFS", _cfs_kernel), ("Enoki WFQ", _wfq_kernel)):
        for config, same in (("one core", True), ("two cores", False)):
            kernel, policy = factory()
            result = run_pipe_benchmark(kernel, policy,
                                        rounds=args.rounds,
                                        same_core=same)
            rows.append([name, config, result.latency_us_per_message])
    print(render_table("sched-pipe (us per message)",
                       ["scheduler", "config", "latency"], rows))
    return 0


def cmd_schbench(args):
    from repro.workloads.schbench import run_schbench

    topology = Topology.big80() if args.big else Topology.small8()
    rows = []
    for name, factory in (("CFS", _cfs_kernel), ("Enoki WFQ", _wfq_kernel)):
        kernel, policy = factory(topology)
        result = run_schbench(kernel, policy, message_threads=2,
                              workers_per_thread=args.workers,
                              warmup_ns=msecs(50),
                              duration_ns=msecs(args.duration_ms))
        rows.append([name, result.p50_us, result.p99_us,
                     len(result.samples_us)])
    print(render_table(
        f"schbench, 2 message threads x {args.workers} workers (us)",
        ["scheduler", "p50", "p99", "samples"], rows))
    return 0


def cmd_rocksdb(args):
    from repro.workloads.rocksdb import run_rocksdb

    rows = []
    for name in ("CFS", "Enoki-Shinjuku"):
        kernel = Kernel(Topology.small8(), SimConfig())
        kernel.register_sched_class(CfsSchedClass(policy=0), priority=5)
        policy = 0
        if name == "Enoki-Shinjuku":
            sched = EnokiShinjuku(8, 8, worker_cpus=[3, 4, 5, 6, 7])
            EnokiSchedClass.register(kernel, sched, 8, priority=10)
            policy = 8
        result = run_rocksdb(kernel, policy, args.load,
                             duration_ns=msecs(args.duration_ms))
        rows.append([name, result.p50_us, result.p99_us,
                     result.completed])
    print(render_table(
        f"RocksDB-style server at {args.load} req/s (GET latency, us)",
        ["scheduler", "p50", "p99", "completed"], rows))
    return 0


def cmd_upgrade(args):
    from repro.workloads.schbench import run_schbench

    for label, topology in (("1-socket/8-core", Topology.small8()),
                            ("2-socket/80-cpu", Topology.big80())):
        kernel, policy = _wfq_kernel(topology)
        shim = next(c for _p, c in kernel._classes if c.policy == policy)
        manager = UpgradeManager(kernel, shim)
        manager.schedule_upgrade(
            lambda: EnokiWfq(topology.nr_cpus, policy), at_ns=msecs(30))
        run_schbench(kernel, policy, message_threads=2,
                     workers_per_thread=2, warmup_ns=msecs(10),
                     duration_ns=msecs(80))
        report = manager.reports[0]
        print(f"{label}: live upgrade pause {report.pause_us:.2f} us "
              f"({report.transferred_tasks} tasks transferred)")
    return 0


def cmd_fairness(args):
    from repro.workloads.fairness import run_fair_share

    rows = []
    for name, factory in (("CFS", _cfs_kernel), ("Enoki WFQ", _wfq_kernel)):
        kernel, policy = factory()
        spread = run_fair_share(kernel, policy, work_ns=msecs(200))
        kernel, policy = factory()
        packed = run_fair_share(kernel, policy, work_ns=msecs(200),
                                one_core=True)
        rows.append([
            name,
            max(spread.finish_times_ns.values()) / 1e9,
            max(packed.finish_times_ns.values()) / 1e9,
            max(packed.finish_times_ns.values())
            / max(spread.finish_times_ns.values()),
        ])
    print(render_table(
        "five CPU hogs: spread vs one core (seconds)",
        ["scheduler", "spread", "one core", "ratio"], rows))
    return 0


def _observed_pipe_run(rounds, hogs, capacity):
    """Run the pipe workload (plus optional background hogs that force
    work stealing) on an Enoki WFQ kernel with the Observer attached."""
    from repro.obs import Observer
    from repro.simkernel.clock import usecs
    from repro.simkernel.program import Run, Sleep
    from repro.workloads.pipe_bench import run_pipe_benchmark

    kernel, policy = _wfq_kernel()
    observer = Observer.attach(kernel, capacity=capacity)

    def hog():
        for _ in range(200):
            yield Run(usecs(40))
            yield Sleep(usecs(15))

    # Background load pinned to half the cores builds uneven queues, so
    # the trace also shows balancing: steals (migrate) and rejections.
    for i in range(hogs):
        kernel.spawn(hog, name=f"hog-{i}", policy=policy,
                     allowed_cpus={0, 1, 2, 3}, origin_cpu=i % 4)
    result = run_pipe_benchmark(kernel, policy, rounds=rounds)
    return kernel, observer, result


def cmd_trace(args):
    kernel, observer, result = _observed_pipe_run(
        args.rounds, args.hogs, args.capacity)
    if args.export == "chrome":
        observer.export_chrome(args.output)
    else:
        observer.export_ftrace(args.output)
    summary = observer.summary()
    rows = [[kind, count] for kind, count in sorted(summary.items())]
    rows.append(["(dropped)", observer.dropped])
    print(render_table(
        f"trace of sched-pipe + {args.hogs} hogs "
        f"({result.latency_us_per_message:.2f} us/msg)",
        ["event kind", "count"], rows))
    print(f"wrote {args.export} trace to {args.output}")
    return 0


def cmd_stats(args):
    _kernel, observer, result = _observed_pipe_run(
        args.rounds, args.hogs, args.capacity)
    print(f"sched-pipe + {args.hogs} hogs: "
          f"{result.latency_us_per_message:.2f} us/msg")
    print(observer.report())
    return 0


def _chaos_run(plan, rounds, hogs):
    """Run the pipe workload under one fault plan; returns an outcome dict.

    The harness is the full containment stack: injector on the shim,
    containment boundary with CFS as the fallback class, and a watchdog
    escalating ``lost_task`` findings into failover — the only way tasks a
    buggy module silently dropped (e.g. via a corrupted token's pnt_err)
    ever get rescued.
    """
    from repro.core import SchedulerWatchdog, UpgradeManager
    from repro.simkernel.clock import usecs
    from repro.simkernel.program import Run, SendHint, Sleep
    from repro.simkernel.task import TaskState
    from repro.workloads.pipe_bench import run_pipe_benchmark

    kernel, policy = _wfq_kernel()
    shim = next(c for _p, c in kernel._classes if c.policy == policy)
    injector = shim.install_faults(plan)
    shim.configure_containment(fallback_policy=0)
    watchdog = SchedulerWatchdog(
        kernel, policy, period_ns=usecs(200), lost_task_ns=usecs(5_000),
        escalate=shim.containment, escalate_kinds=("lost_task",))

    upgrades = None
    if any(spec.callback == "reregister_init" for spec in plan.specs):
        upgrades = UpgradeManager(kernel, shim)
        nr = kernel.topology.nr_cpus
        upgrades.schedule_upgrade(lambda: EnokiWfq(nr, policy),
                                  at_ns=usecs(800))

    def hog():
        # Bursts longer than the 1 ms tick period so task_tick traffic
        # exists for the tick-targeting plans to hit.
        for i in range(20):
            yield Run(usecs(1_200))
            if i % 5 == 0:
                yield SendHint({"tid": None, "seq": i}, policy=policy)
            yield Sleep(usecs(200))

    for i in range(hogs):
        kernel.spawn(hog, name=f"hog-{i}", policy=policy,
                     allowed_cpus={0, 1, 2, 3}, origin_cpu=i % 4)
    result = run_pipe_benchmark(kernel, policy, rounds=rounds)
    watchdog.stop()

    from repro.verify import check_kernel_state

    lost = [pid for pid, task in kernel.tasks.items()
            if task.state is not TaskState.DEAD]
    violations = check_kernel_state(kernel)
    boundary = shim.containment
    report = boundary.failover_report
    return {
        "fired": sum(injector.summary().values()),
        "panics": len(boundary.panics),
        "strikes": boundary.strikes,
        "bad_responses": boundary.bad_responses,
        "failover": (f"-> policy {report.to_policy} "
                     f"({report.transferred} tasks)" if report else "no"),
        "findings": len(watchdog.report.findings),
        "upgrade": ("aborted" if upgrades and upgrades.reports
                    and upgrades.reports[0].aborted else
                    "ok" if upgrades and upgrades.reports else "-"),
        "lost": len(lost),
        "violations": [str(v) for v in violations],
        "latency_us": result.latency_us_per_message,
    }


def cmd_chaos(args):
    from repro.core import FaultPlan

    if args.list:
        print("built-in fault plans:")
        for name in FaultPlan.builtin_names():
            print(f"  {name:16s} {FaultPlan.builtin(name).description}")
        return 0
    names = (FaultPlan.builtin_names() if args.plan == "all"
             else [args.plan])
    rows, outcomes = [], {}
    lost_total = violation_total = 0
    for name in names:
        plan = FaultPlan.builtin(name).with_seed(args.seed)
        outcome = _chaos_run(plan, rounds=args.rounds, hogs=args.hogs)
        outcomes[name] = outcome
        lost_total += outcome["lost"]
        violation_total += len(outcome["violations"])
        rows.append([name, outcome["fired"], outcome["panics"],
                     outcome["failover"], outcome["findings"],
                     outcome["upgrade"], outcome["lost"],
                     len(outcome["violations"]),
                     f"{outcome['latency_us']:.2f}"])
    ok = not lost_total and not violation_total
    if args.json:
        print(json.dumps({"ok": ok, "seed": args.seed,
                          "lost": lost_total,
                          "violations": violation_total,
                          "plans": outcomes}, indent=2))
        return 0 if ok else 1
    print(render_table(
        f"chaos: sched-pipe + {args.hogs} hogs under fault injection "
        f"(seed {args.seed})",
        ["plan", "fired", "panics", "failover", "findings", "upgrade",
         "lost", "sanitize", "us/msg"], rows))
    if not ok:
        print(f"FAIL: {lost_total} task(s) lost, "
              f"{violation_total} invariant violation(s)")
        return 1
    print("all plans contained: every task completed, invariants held")
    return 0


def cmd_fuzz(args):
    from repro.verify import fuzz_run, load_artifact, run_episode

    if args.repro:
        spec, payload = load_artifact(args.repro)
        result = run_episode(spec)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(f"replaying reproducer (seed {spec.seed}, "
                  f"{spec.sched}, {len(spec.tasks)} tasks)")
            for violation in result.violations:
                print(f"  {violation}")
            print("violation reproduced" if not result.ok
                  else "episode passed: the defect is gone")
        # A reproducer that still fails exits 1, same as the fuzz run
        # that produced it — so CI can bisect with the artifact alone.
        return 0 if result.ok else 1

    progress = None
    if not args.json:
        def progress(index, result):
            if not result.ok:
                print(f"episode {index} (seed {result.spec.seed}): "
                      f"{len(result.violations)} violation(s)")
    report = fuzz_run(args.episodes, args.seed, sched=args.sched,
                      bug=args.bug, on_episode=progress)

    artifact = None
    if report.failures and args.out:
        from repro.verify import shrink_episode, write_artifact
        failure = report.failures[0]
        shrunk = shrink_episode(failure.spec, failure)
        artifact = write_artifact(args.out, shrunk)

    if args.json:
        payload = report.to_dict()
        payload["artifact"] = artifact
        print(json.dumps(payload, indent=2))
        return 0 if report.ok else 1
    summary = report.to_dict()
    print(f"{args.episodes} episodes (master seed {args.seed}): "
          f"{len(report.failures)} failing, "
          f"{summary['replay_checked']} replay-checked, "
          f"{summary['control_checked']} control-checked, "
          f"{summary['faults_fired']} faults fired")
    for failure in report.failures[:5]:
        print(f"  seed {failure.spec.seed} ({failure.spec.sched}):")
        for violation in failure.violations[:3]:
            print(f"    {violation}")
    if artifact:
        print(f"shrunk reproducer written to {artifact}")
    if not report.ok:
        print("FAIL: invariant violations found")
        return 1
    print("all invariants held across every episode")
    return 0


EXPERIMENTS = {
    "pipe": (cmd_pipe, "Table 3 quick run: sched-pipe CFS vs Enoki WFQ"),
    "schbench": (cmd_schbench, "Table 4 quick run: schbench latencies"),
    "rocksdb": (cmd_rocksdb, "Figure 2 quick run: dispersed load"),
    "upgrade": (cmd_upgrade, "Section 5.7 quick run: live upgrade pause"),
    "fairness": (cmd_fairness, "Appendix A.1 quick run: fair sharing"),
    "trace": (cmd_trace, "capture a full-stack trace and export it "
                         "(chrome/ftrace)"),
    "stats": (cmd_stats, "metrics registry + per-callback latency "
                         "percentiles"),
    "chaos": (cmd_chaos, "deterministic fault injection: run built-in "
                         "fault plans under containment"),
    "fuzz": (cmd_fuzz, "seeded simulation fuzzing under the invariant "
                       "sanitizers and differential oracles"),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list experiments")

    p = sub.add_parser("pipe", help=EXPERIMENTS["pipe"][1])
    p.add_argument("--rounds", type=int, default=1500)

    p = sub.add_parser("schbench", help=EXPERIMENTS["schbench"][1])
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--duration-ms", type=int, default=400)
    p.add_argument("--big", action="store_true",
                   help="use the 80-CPU topology")

    p = sub.add_parser("rocksdb", help=EXPERIMENTS["rocksdb"][1])
    p.add_argument("--load", type=int, default=40_000)
    p.add_argument("--duration-ms", type=int, default=200)

    sub.add_parser("upgrade", help=EXPERIMENTS["upgrade"][1])
    sub.add_parser("fairness", help=EXPERIMENTS["fairness"][1])

    p = sub.add_parser("trace", help=EXPERIMENTS["trace"][1])
    p.add_argument("--export", choices=["chrome", "ftrace"],
                   default="chrome")
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12,
                   help="background tasks that force work stealing")
    p.add_argument("--capacity", type=int, default=500_000,
                   help="trace ring-buffer capacity (events)")
    p.add_argument("output", nargs="?", default="trace.json")

    p = sub.add_parser("stats", help=EXPERIMENTS["stats"][1])
    p.add_argument("--rounds", type=int, default=500)
    p.add_argument("--hogs", type=int, default=12)
    p.add_argument("--capacity", type=int, default=500_000)

    p = sub.add_parser("chaos", help=EXPERIMENTS["chaos"][1])
    p.add_argument("--plan", default="all",
                   help="built-in plan name, or 'all' (default)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rounds", type=int, default=600)
    p.add_argument("--hogs", type=int, default=6)
    p.add_argument("--list", action="store_true",
                   help="list built-in fault plans and exit")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")

    p = sub.add_parser("fuzz", help=EXPERIMENTS["fuzz"][1])
    p.add_argument("--episodes", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sched", choices=["wfq", "fifo", "eevdf"],
                   help="pin every episode to one scheduler")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.add_argument("--out", metavar="PATH",
                   help="shrink the first failure and write a "
                        "reproducer artifact here")
    p.add_argument("--repro", metavar="PATH",
                   help="re-run a reproducer artifact instead of fuzzing")
    # Test-only: plant a known defect so the suite can prove the
    # sanitizers catch it (see tests/test_cli.py).
    p.add_argument("--bug", default="", help=argparse.SUPPRESS)

    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("experiments:")
        for name, (_fn, help_text) in EXPERIMENTS.items():
            print(f"  {name:10s} {help_text}")
        return 0
    return EXPERIMENTS[args.command][0](args)


if __name__ == "__main__":
    sys.exit(main())
