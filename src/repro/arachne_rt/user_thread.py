"""User threads: the entities the Arachne runtime schedules.

A user thread is a generator yielding *user ops*; the runtime's kernel
threads interpret them.  User-level operations cost fractions of a
microsecond — this is why the Arachne columns of Tables 3 and 4 read
0.1–1 us where every kernel scheduler costs several: a ping-pong between
two user threads never enters the kernel at all.
"""

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class URun:
    """Compute for ``ns`` nanoseconds (runs on the hosting kernel thread)."""

    ns: int


@dataclass
class UWait:
    """Block this user thread on a user-level condition."""

    cond: "UCond"


@dataclass
class UNotify:
    """Wake up to ``count`` user threads waiting on the condition."""

    cond: "UCond"
    count: int = 1


@dataclass
class UExit:
    """Finish the user thread."""

    value: Any = None


@dataclass
class USpawn:
    """Create a new user thread running ``program``."""

    program: Any
    name: Optional[str] = None


class UCond:
    """A user-level wait queue with counting semantics.

    A notify with no waiter present is banked as a pending signal (like a
    semaphore / futex-with-counter), so producer/consumer user threads
    cannot lose wakeups however their dispatchers interleave.
    """

    _next_id = 0

    def __init__(self, name=None):
        UCond._next_id += 1
        self.id = UCond._next_id
        self.name = name or f"ucond-{self.id}"
        self.waiters = deque()   # UserThread, FIFO
        self.signals = 0         # banked notifies with no waiter

    def take_waiters(self, count):
        woken = []
        while self.waiters and len(woken) < count:
            woken.append(self.waiters.popleft())
        return woken

    def consume_signal(self):
        """True when a banked signal absorbed this wait."""
        if self.signals > 0:
            self.signals -= 1
            return True
        return False

    def bank_signals(self, count):
        self.signals += count


class UtState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class UserThread:
    """One lightweight thread managed by the runtime."""

    _next_id = 0

    def __init__(self, program, name=None, on_done=None):
        UserThread._next_id += 1
        self.utid = UserThread._next_id
        self.name = name or f"uthread-{self.utid}"
        self.program = program
        self.on_done = on_done
        self._gen = None
        self._started = False
        self.state = UtState.RUNNABLE
        self.pending_result = None
        self.exit_value = None
        self.home_slot = None     # runtime core slot index

    def next_op(self):
        """Advance one user op; returns None when the thread finishes."""
        if self._gen is None:
            self._gen = self.program()
        try:
            if not self._started:
                self._started = True
                return self._gen.send(None)
            result = self.pending_result
            self.pending_result = None
            return self._gen.send(result)
        except StopIteration as stop:
            self.exit_value = stop.value
            self.state = UtState.DONE
            return None

    def __repr__(self):
        return f"UserThread({self.name!r}, {self.state.value})"
