"""The Arachne user-level threading stack (paper section 4.2.4).

Arachne (Qin et al., OSDI '18) provides two-level scheduling: a **core
arbiter** assigns whole cores to processes, and a per-process **runtime**
multiplexes lightweight user threads over the granted cores.

* :mod:`~repro.arachne_rt.user_thread` — user threads and their op set.
* :mod:`~repro.arachne_rt.runtime` — the runtime: kernel-thread dispatch
  loops, user-thread scheduling, core scaling, arbiter protocol client.
* :mod:`~repro.arachne_rt.native_arbiter` — the original userspace core
  arbiter (socket + cpuset model), the paper's baseline.
* :class:`repro.schedulers.arachne.EnokiCoreArbiter` — the paper's
  contribution: the same arbiter as an Enoki kernel scheduler using
  bidirectional hint queues.
"""

from repro.arachne_rt.runtime import ArachneRuntime
from repro.arachne_rt.user_thread import (
    UCond,
    UExit,
    UNotify,
    URun,
    UserThread,
    UWait,
)

__all__ = [
    "ArachneRuntime",
    "UCond",
    "UExit",
    "UNotify",
    "URun",
    "UserThread",
    "UWait",
]
