"""The Arachne runtime: user-thread scheduling over granted cores.

One :class:`ArachneRuntime` manages a process's user threads.  It owns one
kernel thread ("dispatcher") per core it may use; each dispatcher is a
simulated kernel task pinned to its core that loops: pick a user thread,
interpret its user ops (sub-microsecond switch/wake costs), poll for new
work, and — when idle long enough — release its core back to the arbiter
and park.

Core acquisition/release goes through a pluggable *arbiter client*
(:class:`NullArbiterClient` grants everything instantly; the native and
Enoki arbiters live in their own modules).  The runtime is what makes the
Arachne columns of Tables 3/4 microsecond-scale: user-level wakeups never
enter the kernel.
"""

import enum
from collections import deque

from repro.arachne_rt.user_thread import (
    UExit,
    UNotify,
    URun,
    USpawn,
    UserThread,
    UtState,
    UWait,
)
from repro.simkernel.errors import SimError
from repro.simkernel.futex import Futex
from repro.simkernel.program import FutexWait, Run


class SlotState(enum.Enum):
    ACTIVE = "active"
    PARKING = "parking"
    PARKED = "parked"


class _Slot:
    """Bookkeeping for one dispatcher kernel thread."""

    __slots__ = ("index", "core", "task", "futex", "state",
                 "reclaim_requested", "idle_spun_ns", "grant_pending")

    def __init__(self, index, core):
        self.index = index
        self.core = core
        self.task = None
        self.futex = Futex(name=f"arachne-slot-{core}")
        self.state = SlotState.PARKED
        self.reclaim_requested = False
        self.idle_spun_ns = 0
        self.grant_pending = False


class ArachneRuntime:
    """User-level thread scheduler for one simulated process."""

    #: user-level context switch (same-core notify + switch): Table 3's
    #: one-core Arachne pipe latency is exactly this path
    user_switch_ns = 40
    #: waking a user thread that lands on another dispatcher
    user_wake_ns = 60
    #: creating a user thread
    spawn_cost_ns = 150
    #: dispatcher poll loop quantum while idle
    poll_quantum_ns = 2_000
    #: spin this long with no work before releasing the core
    park_after_ns = 200_000

    def __init__(self, kernel, cores, policy, arbiter=None, name="arachne",
                 min_cores=1, max_cores=None):
        self.kernel = kernel
        self.policy = policy
        self.name = name
        self.arbiter = arbiter if arbiter is not None \
            else NullArbiterClient()
        self.slots = [_Slot(i, core) for i, core in enumerate(cores)]
        self.min_cores = max(1, min_cores)
        self.max_cores = max_cores if max_cores is not None else len(cores)
        self.runnable = deque()
        self.shutdown = False
        self.stats_dispatched = 0
        self.stats_parks = 0
        self.stats_grants = 0
        self.arbiter.bind(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, initial_cores=None):
        """Spawn the dispatcher kernel threads; the first ``initial_cores``
        start active, the rest parked.  All dispatchers share one thread
        group (they are one process)."""
        active = initial_cores if initial_cores is not None \
            else self.min_cores
        self.tgid = None
        for slot in self.slots:
            starts_active = slot.index < active
            slot.state = SlotState.ACTIVE if starts_active \
                else SlotState.PARKED
            slot.task = self.kernel.spawn(
                self._dispatcher_program(slot, starts_active),
                name=f"{self.name}-kt{slot.core}",
                policy=self.policy,
                allowed_cpus=frozenset({slot.core}),
                origin_cpu=slot.core,
                tgid=self.tgid,
            )
            if self.tgid is None:
                self.tgid = slot.task.tgid
        self.arbiter.on_started(self)
        return self

    def stop(self):
        self.shutdown = True
        for slot in self.slots:
            self._unpark(slot)

    # ------------------------------------------------------------------
    # user-facing API
    # ------------------------------------------------------------------

    def submit(self, program, name=None, on_done=None):
        """Create a user thread; wakes a parked dispatcher if needed."""
        thread = UserThread(program, name=name, on_done=on_done)
        self.runnable.append(thread)
        self._scale_up_if_needed()
        return thread

    def active_slots(self):
        return [s for s in self.slots if s.state is SlotState.ACTIVE]

    def _scale_up_if_needed(self):
        active = len(self.active_slots())
        if active >= self.max_cores:
            return
        # More waiting work than cores: ask for another core.
        if len(self.runnable) > active:
            self.arbiter.request_core(self)

    # called by arbiter clients ------------------------------------------------

    def grant_slot(self):
        """Pick a parked slot to activate; returns it (or None).

        Slots with a grant already in flight (pending flag, or futex word
        flipped but dispatcher not yet resumed) are skipped so repeated
        requests fan out over distinct cores.
        """
        for slot in self.slots:
            if (slot.state is SlotState.PARKED and slot.task is not None
                    and not slot.grant_pending and slot.futex.value == 0):
                self.stats_grants += 1
                return slot
        return None

    def _unpark(self, slot):
        self.arbiter.unpark(self, slot)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _dispatcher_program(self, slot, starts_active):
        def prog():
            yield from self.arbiter.intro_ops(self, slot)
            if not starts_active:
                yield from self.arbiter.park_ops(self, slot)
            loops = 0
            while True:
                if self.shutdown:
                    return
                loops += 1
                if loops % 2 == 0:
                    yield from self.arbiter.loop_ops(self, slot)
                if (slot.reclaim_requested
                        and len(self.active_slots()) > self.min_cores):
                    slot.reclaim_requested = False
                    self.stats_parks += 1
                    yield from self.arbiter.park_ops(self, slot)
                    continue
                thread = self._pick_thread()
                if thread is None:
                    slot.idle_spun_ns += self.poll_quantum_ns
                    if (slot.idle_spun_ns >= self.park_after_ns
                            and len(self.active_slots()) > self.min_cores):
                        slot.idle_spun_ns = 0
                        self.stats_parks += 1
                        self.arbiter.notify_release(self, slot)
                        yield from self.arbiter.park_ops(self, slot)
                        continue
                    # Dispatcher poll loop: burn a quantum looking for work.
                    yield Run(self.poll_quantum_ns)
                    continue
                slot.idle_spun_ns = 0
                yield from self._run_thread(slot, thread)
        return prog

    def _pick_thread(self):
        while self.runnable:
            thread = self.runnable.popleft()
            if thread.state is UtState.RUNNABLE:
                return thread
        return None

    def _run_thread(self, slot, thread):
        """Interpret one user thread until it blocks or finishes."""
        thread.state = UtState.RUNNING
        thread.home_slot = slot.index
        self.stats_dispatched += 1
        charge = self.user_switch_ns
        while True:
            op = thread.next_op()
            if op is None:
                break
            if isinstance(op, URun):
                yield Run(charge + int(op.ns))
                charge = 0
                continue
            if isinstance(op, UWait):
                if op.cond.consume_signal():
                    # A banked notify absorbs this wait; keep running.
                    thread.pending_result = None
                    continue
                op.cond.waiters.append(thread)
                thread.state = UtState.BLOCKED
                charge += self.user_switch_ns
                break
            if isinstance(op, UNotify):
                woken = op.cond.take_waiters(op.count)
                for other in woken:
                    other.state = UtState.RUNNABLE
                    self.runnable.append(other)
                    charge += self.user_wake_ns
                # Bank the surplus so no wakeup is ever lost.
                op.cond.bank_signals(op.count - len(woken))
                thread.pending_result = len(woken)
                self._scale_up_if_needed()
                continue
            if isinstance(op, USpawn):
                child = UserThread(op.program, name=op.name)
                self.runnable.append(child)
                thread.pending_result = child
                charge += self.spawn_cost_ns
                self._scale_up_if_needed()
                continue
            if isinstance(op, UExit):
                thread.exit_value = op.value
                thread.state = UtState.DONE
                break
            raise SimError(f"unknown user op {op!r} from {thread}")
        if charge:
            yield Run(charge)
        if thread.state is UtState.DONE and thread.on_done is not None:
            thread.on_done(thread)


class NullArbiterClient:
    """All cores granted up front; parking is plain futex sleep.

    Used when the experiment fixes the core count (Tables 3/4) or as the
    base class for the real clients.
    """

    def bind(self, runtime):
        self.runtime = runtime

    def on_started(self, runtime):
        """Dispatcher tasks exist; finish any kernel-side registration."""

    def intro_ops(self, runtime, slot):
        """Ops each dispatcher runs once at startup."""
        return iter(())

    def loop_ops(self, runtime, slot):
        """Ops an active dispatcher runs periodically (protocol polling)."""
        return iter(())

    def request_core(self, runtime):
        slot = runtime.grant_slot()
        if slot is not None:
            self.unpark(runtime, slot)

    def notify_release(self, runtime, slot):
        """The dispatcher decided to give its core back."""

    def park_ops(self, runtime, slot):
        """Ops a dispatcher yields to park itself."""
        slot.state = SlotState.PARKED
        if slot.grant_pending:
            # A grant raced ahead of the park: stay active.
            slot.grant_pending = False
            slot.state = SlotState.ACTIVE
            return
        slot.futex.value = 0
        # The expected-value check closes the park/unpark race: an unpark
        # that lands before the dispatcher blocks flips the word and the
        # wait bounces instead of sleeping through the grant.
        yield FutexWait(slot.futex, expected=0)
        slot.state = SlotState.ACTIVE
        # A reclaim noted before this park is stale once the core is
        # granted back.
        slot.reclaim_requested = False

    def unpark(self, runtime, slot):
        """Kernel-side: reactivate a parked dispatcher."""
        task = slot.task
        if task is None or slot.state is not SlotState.PARKED:
            return
        slot.futex.value = 1
        if task in slot.futex.waiters:
            slot.futex.remove_waiter(task)
            runtime.kernel.wake_task(task)
        else:
            # The dispatcher has not blocked yet (e.g. it has not even
            # started); leave it a pending grant to consume at park time.
            slot.grant_pending = True
