"""The original (userspace) Arachne core arbiter — the paper's baseline.

    "In Arachne, both the core arbiter and the runtime are implemented in
    userspace.  The core arbiter relies on Linux's cpuset mechanism to
    manage core assignments.  The runtime sends messages to the core
    arbiter over a socket, and the core arbiter either responds on the
    socket or uses a shared memory page."

Model: the arbiter is an ordinary task (scheduled by CFS, like the real
daemon).  Runtimes send requests over a pipe (the socket); grants wake the
parked dispatcher's futex through the kernel; reclaim requests are flipped
in shared memory (the slot's ``reclaim_requested`` flag), exactly the
split the paper describes.  Every round trip therefore pays real
scheduling latency — which is why the Enoki arbiter's in-kernel grants are
cheaper.
"""

from repro.arachne_rt.runtime import NullArbiterClient, SlotState
from repro.simkernel.pipe import Pipe
from repro.simkernel.program import (
    FutexWait,
    FutexWake,
    PipeRead,
    PipeWrite,
    Run,
)


class NativeCoreArbiter:
    """The userspace arbiter daemon plus its client factory."""

    #: arbiter-side processing cost per request message
    process_request_ns = 800

    def __init__(self, kernel, managed_cores, policy=0, name="core-arbiter"):
        self.kernel = kernel
        self.managed_cores = set(managed_cores)
        self.name = name
        self.socket = Pipe(name=f"{name}-socket")
        self.runtimes = {}          # name -> (runtime, client)
        self.granted = {}           # runtime name -> set of cores
        self.requested = {}         # runtime name -> wanted count
        self.task = kernel.spawn(
            self._arbiter_program(), name=name, policy=policy,
        )

    def client(self):
        return NativeArbiterClient(self)

    # ------------------------------------------------------------------
    # the daemon
    # ------------------------------------------------------------------

    def _arbiter_program(self):
        def prog():
            while True:
                message = yield PipeRead(self.socket)
                if message is None or message == ("stop",):
                    return
                yield Run(self.process_request_ns)
                self._handle(message)
                for action in self._rebalance():
                    yield action
        return prog

    def _handle(self, message):
        kind = message[0]
        if kind == "register":
            _kind, name, runtime, client = message
            self.runtimes[name] = (runtime, client)
            self.granted.setdefault(name, set())
            self.requested.setdefault(name, 1)
        elif kind == "request":
            _kind, name, cores = message
            self.requested[name] = cores
        elif kind == "release":
            _kind, name, core = message
            self.granted.get(name, set()).discard(core)

    def _rebalance(self):
        """Grant free cores; emit the kernel ops that wake dispatchers."""
        actions = []
        in_use = set()
        for cores in self.granted.values():
            in_use |= cores
        free = self.managed_cores - in_use
        for name, (runtime, _client) in self.runtimes.items():
            wanted = self.requested.get(name, 1)
            held = self.granted.setdefault(name, set())
            while len(held) < wanted and free:
                slot = self._parked_slot(runtime, free)
                if slot is None:
                    break
                free.discard(slot.core)
                held.add(slot.core)
                # cpuset-equivalent: wake the dispatcher for that core.
                slot.futex.value = 1
                actions.append(FutexWake(slot.futex, 1))
            # Reclaims go through the shared memory page.
            if len(held) > wanted:
                extras = sorted(held, reverse=True)[:len(held) - wanted]
                for core in extras:
                    for slot in runtime.slots:
                        if slot.core == core:
                            slot.reclaim_requested = True
        return actions

    @staticmethod
    def _parked_slot(runtime, free):
        for slot in runtime.slots:
            if slot.state is SlotState.PARKED and slot.core in free:
                return slot
        return None


class NativeArbiterClient(NullArbiterClient):
    """Runtime-side stub speaking the socket protocol."""

    def __init__(self, arbiter):
        self.arbiter = arbiter
        self._request_pending = False
        self._registered = False

    def bind(self, runtime):
        self.runtime = runtime

    def on_started(self, runtime):
        self.arbiter.runtimes[runtime.name] = (runtime, self)
        self.arbiter.granted.setdefault(
            runtime.name,
            {s.core for s in runtime.slots
             if s.state is not SlotState.PARKED},
        )
        self.arbiter.requested.setdefault(
            runtime.name, len(runtime.active_slots()) or 1)

    def loop_ops(self, runtime, slot):
        if self._request_pending:
            self._request_pending = False
            active = len(runtime.active_slots())
            backlog = len(runtime.runnable)
            wanted = max(runtime.min_cores,
                         min(runtime.max_cores,
                             active + max(1, backlog // 2)))
            yield PipeWrite(self.arbiter.socket,
                            ("request", runtime.name, wanted))

    def request_core(self, runtime):
        self._request_pending = True

    def notify_release(self, runtime, slot):
        # Socket message announcing the release; sent by the parking
        # dispatcher itself in park_ops.
        pass

    def park_ops(self, runtime, slot):
        active_after = max(runtime.min_cores,
                           len(runtime.active_slots()) - 1)
        yield PipeWrite(self.arbiter.socket,
                        ("request", runtime.name, active_after))
        yield PipeWrite(self.arbiter.socket,
                        ("release", runtime.name, slot.core))
        slot.state = SlotState.PARKED
        slot.futex.value = 0
        yield FutexWait(slot.futex, expected=0)
        slot.state = SlotState.ACTIVE
        slot.reclaim_requested = False

    def unpark(self, runtime, slot):
        self._request_pending = True
