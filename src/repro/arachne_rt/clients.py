"""Arbiter client for the Enoki core arbiter.

The runtime side of section 4.2.4's protocol: core requests ride the
user-to-kernel hint queue, reclaim requests arrive on the kernel-to-user
reverse queue, and parking/unparking of dispatcher kernel threads happens
through the scheduler itself (a parked kthread yields and is simply never
picked until its core is granted back).
"""

from repro.arachne_rt.runtime import NullArbiterClient, SlotState
from repro.simkernel.program import RecvHints, SendHint, YieldCpu


class EnokiArbiterClient(NullArbiterClient):
    """Talks to :class:`repro.schedulers.arachne.EnokiCoreArbiter`."""

    def __init__(self, shim):
        #: the EnokiSchedClass hosting the arbiter (kernel-side handle,
        #: used only for queue setup — the runtime talks through hints)
        self.shim = shim
        self.rev_queue_id = None
        self._request_pending = False
        self._registered = False

    def bind(self, runtime):
        self.runtime = runtime

    def on_started(self, runtime):
        self.rev_queue_id = self.shim.ensure_rev_queue(runtime.tgid)

    # -- dispatcher-context protocol ops ---------------------------------

    def intro_ops(self, runtime, slot):
        if not self._registered:
            self._registered = True
            yield SendHint({
                "type": "register",
                "process": runtime.name,
                "rev_queue": self.rev_queue_id,
            }, policy=self.shim.policy)
        yield SendHint({
            "type": "kthread",
            "process": runtime.name,
            "core": slot.core,
        }, policy=self.shim.policy)

    def _wanted(self, runtime):
        active = len(runtime.active_slots())
        backlog = len(runtime.runnable)
        return max(runtime.min_cores,
                   min(runtime.max_cores, active + max(1, backlog // 2)))

    def loop_ops(self, runtime, slot):
        if self._request_pending:
            self._request_pending = False
            yield SendHint({
                "type": "request",
                "process": runtime.name,
                "cores": self._wanted(runtime),
            }, policy=self.shim.policy)
        messages = yield RecvHints(policy=self.shim.policy)
        for message in messages or ():
            if "reclaim" in message:
                core = message["reclaim"]
                for other in runtime.slots:
                    if other.core == core:
                        other.reclaim_requested = True
            # "grant" messages are informational: the arbiter unparks the
            # kthread through the scheduler itself.

    # -- core scaling -------------------------------------------------------

    def request_core(self, runtime):
        self._request_pending = True

    def notify_release(self, runtime, slot):
        # The park hint itself tells the arbiter the core is coming back.
        pass

    def park_ops(self, runtime, slot):
        """Park through the scheduler: hint, then yield; the arbiter will
        not pick this kthread again until the core is granted."""
        # Lower the standing request first, or the arbiter would grant the
        # core straight back (park/grant thrash).
        active_after = max(runtime.min_cores,
                           len(runtime.active_slots()) - 1)
        yield SendHint({
            "type": "request",
            "process": runtime.name,
            "cores": active_after,
        }, policy=self.shim.policy)
        yield SendHint({"type": "park", "core": slot.core},
                       policy=self.shim.policy)
        slot.state = SlotState.PARKED
        yield YieldCpu()
        # Running again means the arbiter granted the core back; any
        # reclaim noted before the park is stale.
        slot.state = SlotState.ACTIVE
        slot.reclaim_requested = False

    def unpark(self, runtime, slot):
        # Unparking is the arbiter's job (grant path); nothing to do from
        # the host side.  Ensure a request goes out so it happens.
        self._request_pending = True
