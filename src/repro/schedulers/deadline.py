"""A native model of Linux's deadline scheduler class (SCHED_DEADLINE).

The paper's section 2: "Linux includes three schedulers: a real time
scheduler, an earliest deadline first scheduler, and the Completely Fair
Scheduler."  This class completes the substrate's mainline trio.

Semantics modelled (kernel/sched/deadline.c, simplified):

* each task declares ``(runtime, deadline, period)``: it may consume up to
  ``runtime`` of CPU in every ``period``, and should finish that budget by
  ``deadline`` after the period start;
* **EDF dispatch**: the runnable task with the earliest absolute deadline
  runs first and preempts later-deadline tasks on wakeup;
* **CBS throttling**: a task that exhausts its runtime budget is throttled
  (dequeued) until its next replenishment instant, so it cannot starve
  the classes below — the property that lets deadline tasks coexist with
  CFS;
* admission control: total declared utilisation on the machine may not
  exceed the CPU count.
"""

import heapq

from repro.simkernel.errors import SchedulingError
from repro.simkernel.sched_class import SchedClass


class _DlParams:
    __slots__ = ("runtime_ns", "deadline_ns", "period_ns",
                 "abs_deadline", "budget_ns", "throttled_until")

    def __init__(self, runtime_ns, deadline_ns, period_ns):
        self.runtime_ns = runtime_ns
        self.deadline_ns = deadline_ns
        self.period_ns = period_ns
        self.abs_deadline = 0
        self.budget_ns = runtime_ns
        self.throttled_until = 0

    @property
    def utilisation(self):
        return self.runtime_ns / self.period_ns


class DeadlineSchedClass(SchedClass):
    """Earliest-deadline-first with constant-bandwidth throttling."""

    name = "deadline"

    def __init__(self, policy=3):
        super().__init__()
        self.policy = policy
        self.params = {}            # pid -> _DlParams
        # Per-cpu heaps of (abs_deadline, pid, gen).  Removal is lazy: a
        # pid's generation bump invalidates every queued entry for it, and
        # stale entries are skipped when they surface — no heapify on the
        # removal path.  ``pid`` sorts before ``gen`` so valid-entry
        # ordering matches the old (abs_deadline, pid) heap exactly.
        self._queues = None
        self._gen = {}              # pid -> live entry generation
        self._current = {}          # cpu -> pid
        self._total_util = 0.0
        self._pending = None

    def attach_kernel(self, kernel):
        super().attach_kernel(kernel)
        self._queues = [[] for _ in kernel.topology.all_cpus()]

    # -- admission ---------------------------------------------------------

    def spawn_dl(self, prog, runtime_ns, deadline_ns=None, period_ns=None,
                 **spawn_kwargs):
        """Admit and spawn a deadline task (sched_setattr + fork).

        Raises :class:`SchedulingError` when the declared bandwidth would
        exceed the machine (the kernel's admission-control check).
        """
        period_ns = period_ns if period_ns is not None else deadline_ns
        if period_ns is None:
            raise ValueError("deadline tasks need a deadline or period")
        deadline_ns = deadline_ns if deadline_ns is not None else period_ns
        if not 0 < runtime_ns <= deadline_ns <= period_ns:
            raise ValueError(
                f"need 0 < runtime ({runtime_ns}) <= deadline "
                f"({deadline_ns}) <= period ({period_ns})"
            )
        params = _DlParams(runtime_ns, deadline_ns, period_ns)
        if self._total_util + params.utilisation > \
                self.kernel.topology.nr_cpus:
            raise SchedulingError(
                "deadline admission control: utilisation "
                f"{self._total_util + params.utilisation:.2f} exceeds "
                f"{self.kernel.topology.nr_cpus} CPUs"
            )
        self._pending = params
        try:
            task = self.kernel.spawn(prog, policy=self.policy,
                                     **spawn_kwargs)
            self.params[task.pid] = params
            self._total_util += params.utilisation
        finally:
            self._pending = None
        return task

    def _params(self, pid):
        if pid in self.params:
            return self.params[pid]
        if self._pending is not None:
            return self._pending
        raise SchedulingError(f"pid {pid} has no deadline parameters")

    # -- placement -----------------------------------------------------------

    def select_task_rq(self, task, prev_cpu, wake_flags, waker_cpu=-1):
        params = self._params(task.pid)
        best, best_key = prev_cpu, None
        for cpu in self.kernel.topology.all_cpus():
            if not task.can_run_on(cpu):
                continue
            running = self._current.get(cpu)
            if running is None:
                key = (0, 0)
            else:
                key = (1, -self.params[running].abs_deadline)
            if best_key is None or key < best_key:
                best, best_key = cpu, key
        return best

    # -- CBS bookkeeping ---------------------------------------------------------

    def _replenish(self, params, now):
        """Start a new period: full budget, fresh absolute deadline."""
        params.budget_ns = params.runtime_ns
        params.abs_deadline = now + params.deadline_ns

    def _wakeup_update(self, pid, now):
        params = self._params(pid)
        if now >= params.abs_deadline or params.budget_ns <= 0:
            self._replenish(params, now)

    def update_curr(self, task, delta_ns):
        params = self.params.get(task.pid)
        if params is None:
            return
        params.budget_ns -= delta_ns
        if params.budget_ns <= 0:
            # Budget exhausted: throttle until the next period.
            params.throttled_until = params.abs_deadline
            self.kernel.resched_cpu(task.cpu, when="now")

    # -- state tracking --------------------------------------------------------------

    def _enqueue(self, pid, cpu):
        params = self._params(pid)
        heapq.heappush(self._queues[cpu],
                       (params.abs_deadline, pid, self._gen.get(pid, 0)))

    def _stale(self, entry):
        return entry[2] != self._gen.get(entry[1], 0)

    def _prune_stale(self, queue):
        while queue and self._stale(queue[0]):
            heapq.heappop(queue)

    def task_new(self, task, cpu):
        params = self._params(task.pid)
        self._replenish(params, self.kernel.now)
        self._enqueue(task.pid, cpu)

    def task_wakeup(self, task, cpu):
        self._wakeup_update(task.pid, self.kernel.now)
        self._enqueue(task.pid, cpu)

    def task_blocked(self, task, cpu):
        if self._current.get(cpu) == task.pid:
            del self._current[cpu]
        self._remove(task.pid)

    def task_preempt(self, task, cpu):
        if self._current.get(cpu) == task.pid:
            del self._current[cpu]
        params = self._params(task.pid)
        now = self.kernel.now
        if params.budget_ns <= 0:
            # Throttled: schedule the replenishment wake.
            wake_at = max(params.throttled_until, now + 1)
            self.kernel.timers.arm(
                wake_at - now,
                lambda _t, pid=task.pid, c=cpu: self._unthrottle(pid, c),
                tag=("dl-replenish", task.pid),
            )
        else:
            self._enqueue(task.pid, cpu)

    def _unthrottle(self, pid, cpu):
        task = self.kernel.tasks.get(pid)
        if task is None or not task.on_rq:
            return
        params = self._params(pid)
        self._replenish(params, self.kernel.now)
        if self.kernel.rqs[task.cpu].has(pid):
            self._enqueue(pid, task.cpu)
            self.kernel.resched_cpu(task.cpu, when="now")

    def task_dead(self, pid):
        self._remove(pid)
        for cpu, cur in list(self._current.items()):
            if cur == pid:
                del self._current[cpu]
        params = self.params.pop(pid, None)
        if params is not None:
            self._total_util -= params.utilisation

    def task_departed(self, task, cpu):
        self.task_dead(task.pid)

    def migrate_task_rq(self, task, new_cpu):
        self._remove(task.pid)
        self._enqueue(task.pid, new_cpu)

    def _remove(self, pid):
        # Lazy: bumping the generation invalidates every queued entry for
        # this pid (never deleted from ``_gen`` — a zeroed default would
        # resurrect stale generation-0 entries).
        self._gen[pid] = self._gen.get(pid, 0) + 1

    # -- decisions ------------------------------------------------------------------------

    def pick_next_task(self, cpu):
        queue = self._queues[cpu]
        now = self.kernel.now
        while queue:
            entry = queue[0]
            if self._stale(entry):
                heapq.heappop(queue)
                continue
            pid = entry[1]
            task = self.kernel.tasks.get(pid)
            if task is None or not self.kernel.rqs[cpu].has(pid):
                heapq.heappop(queue)
                continue
            params = self._params(pid)
            if params.budget_ns <= 0 and now < params.throttled_until:
                heapq.heappop(queue)
                self.kernel.timers.arm(
                    params.throttled_until - now,
                    lambda _t, p=pid, c=cpu: self._unthrottle(p, c),
                    tag=("dl-replenish", pid),
                )
                continue
            heapq.heappop(queue)
            self._current[cpu] = pid
            # hrtick-style precision: fire exactly when the CBS budget
            # runs out instead of waiting for the next periodic tick.
            self.kernel.timers.arm(
                max(1, params.budget_ns),
                lambda _t, p=pid, c=cpu: self._budget_check(p, c),
                tag=("dl-budget", pid),
            )
            return pid
        return None

    def _budget_check(self, pid, cpu):
        if self._current.get(cpu) != pid:
            return
        self.kernel._update_curr(cpu)
        params = self.params.get(pid)
        if params is None:
            return
        if params.budget_ns <= 0:
            params.throttled_until = params.abs_deadline
            self.kernel.resched_cpu(cpu, when="now")
        else:
            # Fired early (dispatch-cost skew): re-arm for the remainder.
            self.kernel.timers.arm(
                max(1, params.budget_ns),
                lambda _t, p=pid, c=cpu: self._budget_check(p, c),
                tag=("dl-budget", pid),
            )

    def wakeup_preempt(self, cpu, task):
        running = self._current.get(cpu)
        if running is None:
            return "now"
        if (self._params(task.pid).abs_deadline
                < self.params[running].abs_deadline):
            return "now"
        return None

    def task_tick(self, cpu, task):
        if task is None:
            return
        params = self.params.get(task.pid)
        if params is None:
            return
        queue = self._queues[cpu]
        self._prune_stale(queue)
        if queue and queue[0][0] < params.abs_deadline:
            self.kernel.resched_cpu(cpu, when="now")
