"""The Enoki locality-aware scheduler (paper section 4.2.3).

    "We also implemented a locality aware scheduler using Enoki that
    co-locates tasks that communicate heavily with each other or benefit
    from cache sharing.  This scheduler uses Enoki's userspace hinting
    mechanism ... The application sends the ID of each newly created
    thread and a locality value to indicate which tasks should be
    co-located.  ... these hints do not need to specify the core for each
    task, only its colocation, which the scheduler can ignore if
    non-optimal, such as when there are too many tasks on a given core.
    This scheduler was implemented in 203 lines."

Hints are dictionaries ``{"tid": pid, "locality": value}``.  Each distinct
locality value is bound to a core (round robin over the managed CPUs); a
hinted task is then always placed on its group's core unless that core is
overloaded.  With ``mode="random"`` the scheduler ignores hints and places
tasks uniformly at random — the paper's no-hints baseline for Table 6.
"""

import random
from collections import deque

from repro.core.trait import EnokiScheduler


class EnokiLocality(EnokiScheduler):
    """Hint-driven co-location over per-core FIFO queues."""

    #: refuse to co-locate onto a core already holding this many tasks
    OVERLOAD_THRESHOLD = 8

    def __init__(self, nr_cpus, policy=9, mode="hints", seed=1):
        super().__init__()
        if mode not in ("hints", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.mode = mode
        self.rng = random.Random(seed)
        self.queues = {cpu: deque() for cpu in range(nr_cpus)}
        self.current = {}          # cpu -> running pid
        self.group_of = {}         # pid -> locality value
        self.core_of_group = {}    # locality value -> cpu
        self._next_group_core = 0
        self.hints_seen = 0
        self.lock = None

    def module_init(self):
        self.lock = self.env.create_lock("locality-state")

    def get_policy(self):
        return self.policy

    # ------------------------------------------------------------------
    # hints
    # ------------------------------------------------------------------

    def parse_hint(self, hint):
        """Bind a thread to a locality group; bind new groups to cores."""
        payload = hint.payload
        if not isinstance(payload, dict):
            return
        tid = payload.get("tid")
        if tid is None:
            tid = hint.pid   # "co-locate me"
        group = payload.get("locality")
        if group is None:
            return
        with self.lock:
            self.hints_seen += 1
            self.group_of[tid] = group
            if group not in self.core_of_group:
                self.core_of_group[group] = \
                    self._next_group_core % self.nr_cpus
                self._next_group_core += 1

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def _group_core(self, pid, allowed_cpus):
        group = self.group_of.get(pid)
        if group is None:
            return None
        core = self.core_of_group.get(group)
        if core is None:
            return None
        if allowed_cpus is not None and core not in allowed_cpus:
            return None
        # Co-location is advisory: skip it when the core is overloaded.
        load = len(self.queues[core]) + (1 if core in self.current else 0)
        if load >= self.OVERLOAD_THRESHOLD:
            return None
        return core

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = (list(allowed_cpus) if allowed_cpus is not None
                      else list(range(self.nr_cpus)))
        with self.lock:
            if self.mode == "random":
                return self.rng.choice(candidates)
            core = self._group_core(pid, allowed_cpus)
            if core is not None:
                return core
            return min(candidates,
                       key=lambda c: (len(self.queues[c])
                                      + (1 if c in self.current else 0)))

    # ------------------------------------------------------------------
    # per-core FIFO state
    # ------------------------------------------------------------------

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        with self.lock:
            self.queues[sched.cpu].append((pid, sched))

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        with self.lock:
            self.queues[sched.cpu].append((pid, sched))

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        self._drop(pid)
        with self.lock:
            if self.current.get(cpu) == pid:
                del self.current[cpu]

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        with self.lock:
            if self.current.get(cpu) == pid:
                del self.current[cpu]
            self.queues[sched.cpu].append((pid, sched))

    def task_dead(self, pid):
        self._drop(pid)
        with self.lock:
            self.group_of.pop(pid, None)
            for cpu, running in list(self.current.items()):
                if running == pid:
                    del self.current[cpu]

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)
                        return entry[1]
        return None

    def _drop(self, pid):
        with self.lock:
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)

    def migrate_task_rq(self, pid, new_cpu, sched):
        with self.lock:
            old = None
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)
                        old = entry[1]
            self.queues[new_cpu].append((pid, sched))
        return old

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            if self.queues[cpu]:
                pid, token = self.queues[cpu].popleft()
                self.current[cpu] = pid
                return token
        return None

    def pnt_err(self, cpu, pid, err, sched):
        if sched is not None:
            self._drop(sched.pid)

    def balance(self, cpu):
        # Locality beats work conservation for hinted groups; only pull
        # from cores whose queue holds unhinted overflow work.
        with self.lock:
            if self.queues[cpu]:
                return None
            for other, queue in self.queues.items():
                if other == cpu:
                    continue
                for pid, _token in queue:
                    if self.group_of.get(pid) is None:
                        return pid
        return None
