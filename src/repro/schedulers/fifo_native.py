"""A minimal trusted (native) FIFO scheduler class.

This is kernel-side code, like Linux's rt/deadline classes: it implements
the raw :class:`~repro.simkernel.sched_class.SchedClass` hooks directly with
no framework between it and the core.  The substrate test-suite uses it to
validate the kernel's call-ordering contract, and it doubles as the
reference for how *little* a native class can get away with — and how
dangerous that is: nothing stops it from returning a bogus pid, which the
kernel core treats as a crash.
"""

from collections import deque

from repro.simkernel.sched_class import SchedClass, WF_SYNC


class NativeFifoClass(SchedClass):
    """Per-CPU FIFO queues with round-robin fork placement."""

    name = "native-fifo"

    def __init__(self, policy=1, timeslice_ns=None):
        super().__init__()
        self.policy = policy
        self.timeslice_ns = timeslice_ns
        self._queues = None
        self._next_cpu = 0

    def attach_kernel(self, kernel):
        super().attach_kernel(kernel)
        self._queues = [deque() for _ in kernel.topology.all_cpus()]

    # -- placement ---------------------------------------------------------

    def select_task_rq(self, task, prev_cpu, wake_flags, waker_cpu=-1):
        candidates = [
            c for c in self.kernel.topology.all_cpus() if task.can_run_on(c)
        ]
        if wake_flags & WF_SYNC and task.can_run_on(prev_cpu):
            return prev_cpu
        # Prefer an idle allowed CPU, else round-robin.
        for cpu in candidates:
            if self.kernel.rqs[cpu].nr_running == 0:
                return cpu
        self._next_cpu = (self._next_cpu + 1) % len(candidates)
        return candidates[self._next_cpu]

    # -- state tracking -------------------------------------------------------

    def task_new(self, task, cpu):
        self._queues[cpu].append(task.pid)

    def task_wakeup(self, task, cpu):
        self._queues[cpu].append(task.pid)

    def task_blocked(self, task, cpu):
        self._discard(task.pid)

    def task_yield(self, task, cpu):
        self._queues[cpu].append(task.pid)

    def task_preempt(self, task, cpu):
        self._queues[cpu].append(task.pid)

    def task_dead(self, pid):
        self._discard(pid)

    def task_departed(self, task, cpu):
        self._discard(task.pid)

    def migrate_task_rq(self, task, new_cpu):
        self._discard(task.pid)
        self._queues[new_cpu].append(task.pid)

    def _discard(self, pid):
        for queue in self._queues:
            try:
                queue.remove(pid)
            except ValueError:
                pass

    # -- decisions ------------------------------------------------------------

    def pick_next_task(self, cpu):
        queue = self._queues[cpu]
        if queue:
            return queue.popleft()
        return None

    def task_tick(self, cpu, task):
        if self.timeslice_ns is None or task is None:
            return
        ran = self.kernel.now - task.last_enqueue_ns
        if ran >= self.timeslice_ns and self._queues[cpu]:
            self.kernel.resched_cpu(cpu, when="now")

    def queued_pids(self, cpu):
        """Test hook: the policy-side view of a CPU's queue."""
        return tuple(self._queues[cpu])
