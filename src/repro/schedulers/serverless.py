"""The Enoki serverless scheduler (scx_serverless-style).

Design ported from the ``scx_serverless`` idea (SNIPPETS.md §1-2):
identify short-lived FaaS invocations and run them to completion with
minimal interruption, while heavy work is pushed to a fair backing
queue so it cannot ruin the short tail.

Classification is a per-wake-episode state machine:

* every task starts (and restarts after each block) as **SHORT** —
  optimistic, because FaaS workers serve a new invocation per wake;
* a SHORT task whose observed episode runtime crosses
  ``promote_threshold_us`` is **demoted to LONG** — the misclassification
  path: the pick-time guard timer fires at exactly the threshold, so a
  long job masquerading as short runs at most one threshold's worth
  before it lands in the backing queue;
* a hint (``{"expected_ns": ...}`` on the Enoki hint ring) classifies
  immediately — the declared-duration fast path: declared-long tasks
  skip the trial run entirely (a queued one moves to the backing queue
  on the spot; a running one is rescheduled off the CPU).

Two queue tiers per CPU:

* **short**: FCFS by global sequence number (Shinjuku idiom).  A short
  pick arms the resched timer at the promotion threshold only, so a
  genuine short invocation is never interrupted — run to completion;
* **long**: sorted by vruntime (WFQ idiom, unweighted), picked when no
  short work exists or every ``long_every``-th pick as anti-starvation.

A SHORT wakeup onto a CPU running a LONG task preempts it immediately;
that plus run-to-completion shorts is where the p99 win over fairness
schedulers comes from.
"""

from bisect import insort
from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.trait import EnokiScheduler

_SEQ = itemgetter(0)

SHORT = 0
LONG = 1


def _fresh_counters():
    return {
        "demotions": 0,          # observed-runtime promotions to LONG
        "hint_short": 0,         # hints declaring a short duration
        "hint_long": 0,          # hints declaring a long duration
        "short_picks": 0,
        "long_picks": 0,
        "wakeup_preempts": 0,    # LONG kicked off-CPU by a SHORT wakeup
    }


@dataclass
class ServerlessTransferState:
    """State passed across a live upgrade of the serverless scheduler."""

    short_queues: dict = field(default_factory=dict)
    long_queues: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    episode_base: dict = field(default_factory=dict)
    vruntime: dict = field(default_factory=dict)
    last_runtime: dict = field(default_factory=dict)
    min_vruntime: dict = field(default_factory=dict)
    current: dict = field(default_factory=dict)
    shorts_streak: dict = field(default_factory=dict)
    next_seq: int = 0
    counters: dict = field(default_factory=_fresh_counters)
    generation: int = 1


class EnokiServerless(EnokiScheduler):
    """Short-FaaS-first two-tier scheduler with runtime classification."""

    TRANSFER_TYPE = ServerlessTransferState

    #: Opt out of the kernel's tick-driven wakeup preemption: shorts run
    #: to completion, and the module's own resched timers handle the one
    #: case that must preempt (a SHORT waking over a running LONG).
    WAKEUP_PREEMPT = None

    def __init__(self, nr_cpus, policy=9, promote_threshold_us=1_000,
                 long_slice_us=1_000, long_every=8):
        super().__init__()
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.promote_threshold_ns = promote_threshold_us * 1_000
        self.long_slice_ns = long_slice_us * 1_000
        #: anti-starvation: serve a LONG after this many SHORT picks
        self.long_every = long_every
        # cpu -> [(seq, pid, token)] FCFS, sorted by seq at all times
        self.short_queues = {cpu: [] for cpu in range(nr_cpus)}
        # cpu -> [(pid, token)] sorted by vruntime (immutable while queued)
        self.long_queues = {cpu: [] for cpu in range(nr_cpus)}
        self.classes = {}        # pid -> SHORT/LONG (absent = SHORT)
        self.episode_base = {}   # pid -> runtime at wake-episode start
        self.vruntime = {}       # pid -> accumulated LONG-class runtime
        self.last_runtime = {}   # pid -> last raw runtime seen
        self.min_vruntime = {cpu: 0 for cpu in range(nr_cpus)}
        self.current = {}        # cpu -> (pid, class at pick)
        self.shorts_streak = {cpu: 0 for cpu in range(nr_cpus)}
        self.next_seq = 0
        self.counters = _fresh_counters()
        self.generation = 1
        self.lock = None

    def module_init(self):
        self.lock = self.env.create_lock("serverless-state")

    def get_policy(self):
        return self.policy

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _observe(self, pid, runtime):
        """Fold a kernel-reported cumulative runtime into our view."""
        last = self.last_runtime.get(pid, runtime)
        self.last_runtime[pid] = runtime
        delta = runtime - last
        if delta > 0 and self.classes.get(pid, SHORT) == LONG:
            self.vruntime[pid] = self.vruntime.get(pid, 0) + delta

    def _episode_ns(self, pid, runtime):
        return runtime - self.episode_base.get(pid, 0)

    def _vrun_key(self, entry):
        return self.vruntime.get(entry[0], 0)

    def _insert(self, cpu, pid, token):
        """Queue ``pid`` on ``cpu`` according to its current class."""
        if self.classes.get(pid, SHORT) == LONG:
            self.vruntime[pid] = max(self.vruntime.get(pid, 0),
                                     self.min_vruntime[cpu])
            insort(self.long_queues[cpu], (pid, token), key=self._vrun_key)
        else:
            self.next_seq += 1
            insort(self.short_queues[cpu], (self.next_seq, pid, token),
                   key=_SEQ)

    def _remove(self, pid):
        token = None
        for queue in self.short_queues.values():
            for entry in list(queue):
                if entry[1] == pid:
                    queue.remove(entry)
                    token = entry[2]
        for queue in self.long_queues.values():
            for entry in list(queue):
                if entry[0] == pid:
                    queue.remove(entry)
                    token = entry[1]
        return token

    def _demote(self, pid):
        self.classes[pid] = LONG
        self.counters["demotions"] += 1

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def _load(self, cpu):
        return (len(self.short_queues[cpu]) + len(self.long_queues[cpu])
                + (1 if cpu in self.current else 0))

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = (list(allowed_cpus) if allowed_cpus is not None
                      else list(range(self.nr_cpus)))
        with self.lock:
            if prev_cpu in candidates and self._load(prev_cpu) == 0:
                return prev_cpu
            return min(candidates, key=lambda c: (self._load(c), c))

    # ------------------------------------------------------------------
    # task state tracking
    # ------------------------------------------------------------------

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        with self.lock:
            self.last_runtime[pid] = runtime
            self.episode_base[pid] = runtime
            self._insert(sched.cpu, pid, sched)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        with self.lock:
            cpu = sched.cpu
            self.episode_base[pid] = self.last_runtime.get(pid, 0)
            cls = self.classes.get(pid, SHORT)
            self._insert(cpu, pid, sched)
            running = self.current.get(cpu)
            preempt = (cls == SHORT and running is not None
                       and running[1] == LONG)
            if preempt:
                self.counters["wakeup_preempts"] += 1
        if preempt:
            # A short invocation never waits behind a long job: kick the
            # long off the CPU now, it re-queues behind its vruntime.
            self.env.start_resched_timer(cpu, 0)

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        with self.lock:
            self._observe(pid, runtime)
            self._remove(pid)
            self.current.pop(cpu, None)
            # End of the wake episode: classification resets to the
            # optimistic default — the next wake may serve a different
            # (short) invocation on the same worker task.
            self.classes.pop(pid, None)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        with self.lock:
            self._observe(pid, runtime)
            self.current.pop(cpu, None)
            if (self.classes.get(pid, SHORT) == SHORT
                    and self._episode_ns(pid, runtime)
                    >= self.promote_threshold_ns):
                # Misclassified: it called itself short (or said nothing)
                # and outran the trial slice.
                self._demote(pid)
            self._insert(sched.cpu, pid, sched)

    def task_dead(self, pid):
        with self.lock:
            self._remove(pid)
            self._forget(pid)
            for cpu, (cur, _cls) in list(self.current.items()):
                if cur == pid:
                    del self.current[cpu]

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            token = self._remove(pid)
            self._forget(pid)
        return token

    def _forget(self, pid):
        self.classes.pop(pid, None)
        self.episode_base.pop(pid, None)
        self.vruntime.pop(pid, None)
        self.last_runtime.pop(pid, None)

    def migrate_task_rq(self, pid, new_cpu, sched):
        with self.lock:
            old_token = self._remove(pid)
            self._insert(new_cpu, pid, sched)
        return old_token

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            for pid, runtime in runtimes.items():
                self._observe(pid, runtime)
            shortq = self.short_queues[cpu]
            longq = self.long_queues[cpu]
            take_long = longq and (
                not shortq
                or self.shorts_streak[cpu] >= self.long_every)
            if take_long:
                pid, token = longq.pop(0)
                self.shorts_streak[cpu] = 0
                self.min_vruntime[cpu] = max(self.min_vruntime[cpu],
                                             self.vruntime.get(pid, 0))
                self.current[cpu] = (pid, LONG)
                self.counters["long_picks"] += 1
                slice_ns = self.long_slice_ns
            elif shortq:
                _seq, pid, token = shortq.pop(0)
                self.shorts_streak[cpu] += 1
                self.current[cpu] = (pid, self.classes.get(pid, SHORT))
                self.counters["short_picks"] += 1
                # The guard timer *is* the classifier: a genuine short
                # finishes before it fires (zero interruptions), a
                # misclassified long is preempted and demoted by it.
                slice_ns = self.promote_threshold_ns
            else:
                return None
        self.env.start_resched_timer(cpu, slice_ns)
        return token

    def pnt_err(self, cpu, pid, err, sched):
        if sched is not None:
            with self.lock:
                self._remove(sched.pid)

    def balance(self, cpu):
        """Idle CPUs steal waiting shorts first, then backing-queue work."""
        with self.lock:
            if self.short_queues[cpu] or self.long_queues[cpu]:
                return None
            best, waiting = None, 0
            for other in range(self.nr_cpus):
                if other == cpu:
                    continue
                n = len(self.short_queues[other])
                if n > waiting:
                    best, waiting = other, n
            if best is not None:
                return self.short_queues[best][0][1]
            for other in range(self.nr_cpus):
                if other == cpu:
                    continue
                n = len(self.long_queues[other])
                if n > waiting:
                    best, waiting = other, n
            if best is not None:
                return self.long_queues[best][0][0]
            return None

    def balance_err(self, cpu, pid, err, sched):
        pass

    def task_tick(self, cpu, queued, pid, runtime):
        if pid is None:
            return
        with self.lock:
            self._observe(pid, runtime)
            running = self.current.get(cpu)
            if running is None or running[0] != pid or not queued:
                return
            # Backup demotion path for when the guard timer was replaced
            # (e.g. by a wakeup preemption on another class's behalf).
            preempt = (self.classes.get(pid, SHORT) == SHORT
                       and self._episode_ns(pid, runtime)
                       >= self.promote_threshold_ns)
        if preempt:
            self.env.start_resched_timer(cpu, 0)

    # ------------------------------------------------------------------
    # hints: the declared-duration fast path
    # ------------------------------------------------------------------

    def parse_hint(self, hint):
        payload = hint.payload
        if not isinstance(payload, dict):
            return
        expected = payload.get("expected_ns")
        if not isinstance(expected, int) or hint.pid is None:
            return
        pid = hint.pid
        kick_cpu = None
        with self.lock:
            if expected >= self.promote_threshold_ns:
                self.counters["hint_long"] += 1
                already_long = self.classes.get(pid, SHORT) == LONG
                self.classes[pid] = LONG
                if not already_long:
                    for cpu, (cur, _cls) in self.current.items():
                        if cur == pid:
                            # Declared-long while running: reschedule it
                            # off the CPU, the preempt path re-queues it
                            # into the backing queue.
                            self.current[cpu] = (pid, LONG)
                            kick_cpu = cpu
                            break
                    else:
                        token = self._remove(pid)
                        if token is not None:
                            self._insert(token.cpu, pid, token)
            else:
                self.counters["hint_short"] += 1
                self.classes[pid] = SHORT
        if kick_cpu is not None:
            self.env.start_resched_timer(kick_cpu, 0)

    # ------------------------------------------------------------------
    # live upgrade
    # ------------------------------------------------------------------

    def reregister_prepare(self):
        return ServerlessTransferState(
            short_queues=self.short_queues,
            long_queues=self.long_queues,
            classes=self.classes,
            episode_base=self.episode_base,
            vruntime=self.vruntime,
            last_runtime=self.last_runtime,
            min_vruntime=self.min_vruntime,
            current=self.current,
            shorts_streak=self.shorts_streak,
            next_seq=self.next_seq,
            counters=self.counters,
            generation=self.generation,
        )

    def reregister_init(self, state):
        if state is None:
            return
        self.short_queues = state.short_queues
        self.long_queues = state.long_queues
        self.classes = state.classes
        self.episode_base = state.episode_base
        self.vruntime = state.vruntime
        self.last_runtime = state.last_runtime
        self.min_vruntime = state.min_vruntime
        self.current = state.current
        self.shorts_streak = state.shorts_streak
        self.next_seq = state.next_seq
        self.counters = state.counters
        self.generation = state.generation + 1
        for cpu in range(self.nr_cpus):
            self.short_queues.setdefault(cpu, [])
            self.long_queues.setdefault(cpu, [])
            self.min_vruntime.setdefault(cpu, 0)
            self.shorts_streak.setdefault(cpu, 0)
        for queue in self.short_queues.values():
            queue.sort(key=_SEQ)
        for queue in self.long_queues.values():
            queue.sort(key=self._vrun_key)
