"""The Enoki core arbiter (paper section 4.2.4).

    "We reimplemented the Arachne core arbiter as a kernel scheduler using
    Enoki.  This scheduler uses Enoki's bidirectional userspace hints.  We
    use the user-to-kernel queue to send core requests to the Enoki core
    arbiter; we use the kernel-to-userspace queue for core reclamation
    requests.  The Enoki core arbiter executes the same decisions as the
    Arachne core arbiter, but uses standard kernel scheduling mechanisms
    for assigning, moving, and blocking user scheduler activations rather
    than relying on cpuset and sockets.  The Enoki version of the core
    arbiter is implemented in 579 lines of code."

Protocol (hint payloads are plain dicts):

* ``{"type": "register", "process": name, "rev_queue": qid}`` — a runtime
  announces itself and its kernel-to-user queue.
* ``{"type": "kthread", "process": name, "core": c}`` — sent once by each
  dispatcher kernel thread so the arbiter knows which pid backs which core
  (the hint's own pid identifies the thread).
* ``{"type": "request", "process": name, "cores": n}`` — the runtime wants
  ``n`` cores total.
* ``{"type": "park", "core": c}`` — the sending kthread is about to yield
  its core back; the arbiter stops picking it until the core is granted
  again.

Grants are executed with **standard kernel scheduling mechanisms**: a
granted kthread is simply picked again (the arbiter arms a zero-delay
resched timer on the core).  Reclaims are ``{"reclaim": core}`` messages
on the process's reverse queue.
"""

from dataclasses import dataclass, field

from repro.core.trait import EnokiScheduler


@dataclass
class _ProcessState:
    name: str
    rev_queue: int = -1
    requested: int = 1
    kthreads: dict = field(default_factory=dict)   # core -> pid
    granted: set = field(default_factory=set)      # cores currently granted


@dataclass
class ArbiterTransferState:
    """State passed across a live upgrade of the arbiter."""

    processes: dict = field(default_factory=dict)
    parked: dict = field(default_factory=dict)
    queues: dict = field(default_factory=dict)
    generation: int = 1


class EnokiCoreArbiter(EnokiScheduler):
    """Two-level scheduling: processes request cores, the arbiter grants
    them by scheduling (or refusing to schedule) dispatcher kthreads."""

    TRANSFER_TYPE = ArbiterTransferState

    def __init__(self, nr_cpus, policy=11, managed_cores=None):
        super().__init__()
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.managed_cores = (set(managed_cores) if managed_cores is not None
                              else set(range(nr_cpus)))
        self.processes = {}        # name -> _ProcessState
        self.process_of_pid = {}   # pid -> process name
        self.core_of_pid = {}      # pid -> core
        self.parked = {}           # pid -> Schedulable (held while parked)
        self.queues = {c: [] for c in range(nr_cpus)}   # [(pid, token)]
        self.generation = 1
        self.lock = None

    def module_init(self):
        self.lock = self.env.create_lock("arbiter-state")

    def get_policy(self):
        return self.policy

    # ------------------------------------------------------------------
    # hints: the arbiter protocol
    # ------------------------------------------------------------------

    def parse_hint(self, hint):
        payload = hint.payload
        if not isinstance(payload, dict):
            return
        kind = payload.get("type")
        if kind == "register":
            name = payload["process"]
            proc = self.processes.setdefault(name, _ProcessState(name))
            proc.rev_queue = payload.get("rev_queue", -1)
        elif kind == "kthread":
            name = payload["process"]
            core = payload["core"]
            proc = self.processes.setdefault(name, _ProcessState(name))
            proc.kthreads[core] = hint.pid
            self.process_of_pid[hint.pid] = name
            self.core_of_pid[hint.pid] = core
            proc.granted.add(core)
        elif kind == "request":
            name = payload["process"]
            proc = self.processes.setdefault(name, _ProcessState(name))
            proc.requested = int(payload["cores"])
            self._rebalance()
        elif kind == "park":
            # The sender will yield; mark it parked-on-yield.
            pid = hint.pid
            core = self.core_of_pid.get(pid)
            name = self.process_of_pid.get(pid)
            if core is not None and name is not None:
                self.processes[name].granted.discard(core)
            self.parked[pid] = None   # token captured at the yield
            self._rebalance()

    # ------------------------------------------------------------------
    # core allocation policy
    # ------------------------------------------------------------------

    def _cores_in_use(self):
        used = set()
        for proc in self.processes.values():
            used |= proc.granted
        return used

    def _rebalance(self):
        """Grant free cores to under-served processes; reclaim extras."""
        free = set(self.managed_cores) - self._cores_in_use()
        for proc in self.processes.values():
            while len(proc.granted) < proc.requested:
                candidate = None
                for core in sorted(proc.kthreads):
                    if core in free and core not in proc.granted:
                        candidate = core
                        break
                if candidate is None:
                    break
                free.discard(candidate)
                self._grant(proc, candidate)
            # Over-served process with someone else starving: reclaim.
            if len(proc.granted) > proc.requested:
                extras = len(proc.granted) - proc.requested
                for core in sorted(proc.granted, reverse=True)[:extras]:
                    self._reclaim(proc, core)

    def _grant(self, proc, core):
        pid = proc.kthreads.get(core)
        if pid is None:
            return
        proc.granted.add(core)
        if pid in self.parked:
            token = self.parked.pop(pid)
            if token is not None:
                self.queues[core].append((pid, token))
            # Standard kernel scheduling mechanism: just get the core to
            # run its pick path again.
            self.env.start_resched_timer(core, 0)
        if proc.rev_queue >= 0:
            self.env.send_rev_message(proc.rev_queue, {"grant": core})

    def _reclaim(self, proc, core):
        if proc.rev_queue >= 0:
            self.env.send_rev_message(proc.rev_queue, {"reclaim": core})

    # ------------------------------------------------------------------
    # scheduler state tracking
    # ------------------------------------------------------------------

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        # Dispatcher kthreads are pinned; honor the mask.
        if allowed_cpus:
            return min(allowed_cpus)
        return prev_cpu if prev_cpu >= 0 else 0

    def _enqueue(self, pid, sched):
        if pid in self.parked:
            # Parked kthread: hold the token, do not queue it for pick.
            self.parked[pid] = sched
        else:
            self.queues[sched.cpu].append((pid, sched))

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        with self.lock:
            self._enqueue(pid, sched)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        with self.lock:
            self._enqueue(pid, sched)

    def task_yield(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                   sched):
        with self.lock:
            self._enqueue(pid, sched)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        with self.lock:
            self._enqueue(pid, sched)

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        with self.lock:
            self._drop(pid)

    def task_dead(self, pid):
        with self.lock:
            self._drop(pid)
            self.parked.pop(pid, None)
            name = self.process_of_pid.pop(pid, None)
            core = self.core_of_pid.pop(pid, None)
            if name is not None and core is not None:
                proc = self.processes.get(name)
                if proc is not None:
                    proc.kthreads.pop(core, None)
                    proc.granted.discard(core)

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            token = self._drop(pid)
            if token is None:
                token = self.parked.pop(pid, None)
            return token

    def _drop(self, pid):
        token = None
        for queue in self.queues.values():
            for entry in list(queue):
                if entry[0] == pid:
                    queue.remove(entry)
                    token = entry[1]
        return token

    def migrate_task_rq(self, pid, new_cpu, sched):
        with self.lock:
            old = self._drop(pid)
            self.queues[new_cpu].append((pid, sched))
        return old

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            queue = self.queues[cpu]
            while queue:
                pid, token = queue.pop(0)
                if pid in self.parked:
                    self.parked[pid] = token
                    continue
                return token
        return None

    def pnt_err(self, cpu, pid, err, sched):
        if sched is not None:
            with self.lock:
                self._drop(sched.pid)

    # ------------------------------------------------------------------
    # live upgrade
    # ------------------------------------------------------------------

    def reregister_prepare(self):
        return ArbiterTransferState(
            processes=self.processes,
            parked=self.parked,
            queues=self.queues,
            generation=self.generation,
        )

    def reregister_init(self, state):
        if state is None:
            return
        self.processes = state.processes
        self.parked = state.parked
        self.queues = state.queues
        self.generation = state.generation + 1
        for proc in self.processes.values():
            for core, pid in proc.kthreads.items():
                self.process_of_pid[pid] = proc.name
                self.core_of_pid[pid] = core
