"""The Enoki weighted-fair-queuing scheduler (paper section 4.2.1).

    "Our version does not provide the full complexity of the [CFS]
    algorithm ... We compute vruntime for per-core time slices but use a
    much simpler method for determining task placement.  If a core is
    about to become idle and another core had a waiting task, our
    scheduler steals waiting work from the core with the longest queue of
    tasks.  Otherwise, our scheduler does not rebalance tasks."

Everything here is pure policy against the Enoki trait: runtimes arrive in
messages (Enoki-C tracks them), queue membership is proven by Schedulable
tokens, and preemption is requested through the env's resched timer.
The paper's version is 646 lines of Rust; this is deliberately the same
kind of object — far simpler than CFS, close to it in behaviour.
"""

from bisect import insort
from dataclasses import dataclass, field

from repro.core.trait import EnokiScheduler
from repro.simkernel.task import NICE_0_WEIGHT, weight_for_nice


@dataclass
class WfqTransferState:
    """State passed across a live upgrade of the WFQ scheduler."""

    queues: dict = field(default_factory=dict)
    vruntime: dict = field(default_factory=dict)
    last_runtime: dict = field(default_factory=dict)
    weights: dict = field(default_factory=dict)
    min_vruntime: dict = field(default_factory=dict)
    current: dict = field(default_factory=dict)
    generation: int = 1


class EnokiWfq(EnokiScheduler):
    """Per-core weighted fair queuing with idle-time work stealing."""

    TRANSFER_TYPE = WfqTransferState

    #: how much earlier than the fair share a task may run after waking
    WAKEUP_BONUS_DIVISOR = 2

    def __init__(self, nr_cpus, policy=7,
                 sched_latency_ns=6_000_000,
                 min_granularity_ns=750_000):
        super().__init__()
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.sched_latency_ns = sched_latency_ns
        self.min_granularity_ns = min_granularity_ns
        # cpu -> list[(pid, token)] kept sorted by vruntime incrementally:
        # every insert goes through ``_insert`` (bisect.insort), which is
        # exact because a queued pid's vruntime never changes — all
        # mutation sites (observe on preempt/block/yield, the wakeup
        # floor, migration re-homing) run while the pid is off-queue, and
        # pick-time ``_observe_runtime`` on a queued pid sees delta 0.
        self.queues = {cpu: [] for cpu in range(nr_cpus)}
        self.vruntime = {}         # pid -> weighted runtime
        self.last_runtime = {}     # pid -> last raw runtime seen
        self.weights = {}          # pid -> load weight
        self.min_vruntime = {cpu: 0 for cpu in range(nr_cpus)}
        self.current = {}          # cpu -> (pid, runtime at pick)
        self.generation = 1
        self.lock = None

    def module_init(self):
        self.lock = self.env.create_lock("wfq-state")

    def get_policy(self):
        return self.policy

    # ------------------------------------------------------------------
    # vruntime bookkeeping
    # ------------------------------------------------------------------

    def _observe_runtime(self, pid, runtime):
        """Fold a kernel-reported raw runtime into the pid's vruntime."""
        last = self.last_runtime.get(pid, runtime)
        delta = runtime - last
        self.last_runtime[pid] = runtime
        if delta <= 0:
            # Queued pids observe a zero delta at every pick (vruntime is
            # immutable while queued); adding 0 is a no-op, and every read
            # defaults missing pids to 0, so skip the write entirely.
            return
        weight = self.weights.get(pid, NICE_0_WEIGHT)
        self.vruntime[pid] = (
            self.vruntime.get(pid, 0) + delta * NICE_0_WEIGHT // weight
        )

    def _vrun_key(self, entry):
        return self.vruntime.get(entry[0], 0)

    def _insert(self, cpu, pid, token):
        """Sorted insert; ties land after existing peers, matching the
        stable-sort-of-appends order the per-pick sort used to produce."""
        insort(self.queues[cpu], (pid, token), key=self._vrun_key)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = (list(allowed_cpus) if allowed_cpus is not None
                      else list(range(self.nr_cpus)))
        with self.lock:
            def busy(cpu):
                return cpu in self.current

            # Cache affinity: back to the previous CPU if it is free.
            if (prev_cpu in candidates and not busy(prev_cpu)
                    and not self.queues.get(prev_cpu)):
                return prev_cpu
            # Otherwise any free CPU, else the shortest queue.
            for cpu in candidates:
                if not busy(cpu) and not self.queues[cpu]:
                    return cpu
            return min(candidates,
                       key=lambda c: (len(self.queues[c]) + busy(c)))

    # ------------------------------------------------------------------
    # state tracking
    # ------------------------------------------------------------------

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        with self.lock:
            self.weights[pid] = weight_for_nice(prio)
            self.last_runtime[pid] = runtime
            cpu = sched.cpu
            # New tasks start at the end of the current period.
            self.vruntime[pid] = (
                self.min_vruntime[cpu]
                + self.sched_latency_ns
                * NICE_0_WEIGHT // self.weights[pid]
                // max(1, len(self.queues[cpu]) + 1)
            )
            self._insert(cpu, pid, sched)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        with self.lock:
            cpu = sched.cpu
            floor = (self.min_vruntime[cpu]
                     - self.sched_latency_ns // self.WAKEUP_BONUS_DIVISOR)
            self.vruntime[pid] = max(self.vruntime.get(pid, 0), floor)
            self._insert(cpu, pid, sched)

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        with self.lock:
            self._observe_runtime(pid, runtime)
            self._remove(pid)
            self.current.pop(cpu, None)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        with self.lock:
            self._observe_runtime(pid, runtime)
            self.current.pop(cpu, None)
            self._insert(sched.cpu, pid, sched)

    def task_yield(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                   sched):
        with self.lock:
            self._observe_runtime(pid, runtime)
            self.current.pop(cpu, None)
            # Yielding pushes the task behind its peers (sorted order
            # makes the back of the queue the max vruntime).
            queue = self.queues[sched.cpu]
            if queue:
                back = self.vruntime.get(queue[-1][0], 0)
                self.vruntime[pid] = max(self.vruntime.get(pid, 0), back)
            self._insert(sched.cpu, pid, sched)

    def task_dead(self, pid):
        with self.lock:
            self._remove(pid)
            self.vruntime.pop(pid, None)
            self.last_runtime.pop(pid, None)
            self.weights.pop(pid, None)
            for cpu, (cur, _rt) in list(self.current.items()):
                if cur == pid:
                    del self.current[cpu]

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            token = self._remove(pid)
            self.vruntime.pop(pid, None)
            self.weights.pop(pid, None)
        return token

    def task_prio_changed(self, pid, prio):
        with self.lock:
            self.weights[pid] = weight_for_nice(prio)

    def _remove(self, pid):
        token = None
        for queue in self.queues.values():
            for entry in list(queue):
                if entry[0] == pid:
                    queue.remove(entry)
                    token = entry[1]
        return token

    def migrate_task_rq(self, pid, new_cpu, sched):
        with self.lock:
            old_token = self._remove(pid)
            # Re-home vruntime to the destination queue's baseline.
            old_v = self.vruntime.get(pid, 0)
            self.vruntime[pid] = max(old_v, self.min_vruntime[new_cpu])
            self._insert(new_cpu, pid, sched)
        return old_token

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            for pid, runtime in runtimes.items():
                self._observe_runtime(pid, runtime)
            queue = self.queues[cpu]
            if not queue:
                return None
            pid, token = queue.pop(0)
            vr = self.vruntime.get(pid, 0)
            self.min_vruntime[cpu] = max(self.min_vruntime[cpu], vr)
            self.current[cpu] = (pid, self.last_runtime.get(pid, 0))
            return token

    def pnt_err(self, cpu, pid, err, sched):
        if sched is not None:
            with self.lock:
                self._remove(sched.pid)

    def balance(self, cpu):
        """Steal from the longest queue when this core is about to idle."""
        with self.lock:
            if self.queues[cpu]:
                return None
            longest_cpu, waiting = None, 0
            for other in range(self.nr_cpus):
                if other == cpu:
                    continue
                n = len(self.queues[other])
                if n > waiting:
                    longest_cpu, waiting = other, n
            if longest_cpu is None or waiting < 1:
                return None
            # Steal the task that has waited longest (queue head by
            # vruntime order).
            return self.queues[longest_cpu][0][0]

    def balance_err(self, cpu, pid, err, sched):
        # Nothing to restore: the task never left its queue.
        pass

    def task_tick(self, cpu, queued, pid, runtime):
        if pid is None:
            return
        with self.lock:
            self._observe_runtime(pid, runtime)
            entry = self.current.get(cpu)
            if entry is None or entry[0] != pid or not queued:
                return
            ran = runtime - entry[1]
            nr = len(self.queues[cpu]) + 1
            slice_ns = max(self.min_granularity_ns,
                           self.sched_latency_ns // nr)
            preempt = ran >= slice_ns
            if not preempt and self.queues[cpu]:
                # Wakeup preemption at the tick: a waiting task with a
                # clearly lower vruntime takes the CPU (queue head).
                head = self.vruntime.get(self.queues[cpu][0][0], 0)
                preempt = head + self.min_granularity_ns < \
                    self.vruntime.get(pid, 0)
        if preempt:
            self.env.start_resched_timer(cpu, 0)

    # ------------------------------------------------------------------
    # live upgrade
    # ------------------------------------------------------------------

    def reregister_prepare(self):
        return WfqTransferState(
            queues=self.queues,
            vruntime=self.vruntime,
            last_runtime=self.last_runtime,
            weights=self.weights,
            min_vruntime=self.min_vruntime,
            current=self.current,
            generation=self.generation,
        )

    def reregister_init(self, state):
        if state is None:
            return
        self.queues = state.queues
        self.vruntime = state.vruntime
        self.last_runtime = state.last_runtime
        self.weights = state.weights
        self.min_vruntime = state.min_vruntime
        self.current = state.current
        self.generation = state.generation + 1
        for cpu in range(self.nr_cpus):
            self.queues.setdefault(cpu, [])
            self.min_vruntime.setdefault(cpu, 0)
        # Re-establish the sorted invariant on adopted queues (stable, so
        # a same-version transfer is a no-op re-sort).
        for queue in self.queues.values():
            queue.sort(key=self._vrun_key)
