"""A model of ghOSt: userspace scheduling by delegation (Humphries et al.,
SOSP '21) — the paper's main comparison framework.

Architecture reproduced here (paper sections 1, 4.2.2, 7):

* Kernel scheduling events for ghOSt-managed tasks are *forwarded as
  messages* to a userspace **agent**.
* The agent is itself a task that must be scheduled to run; it consumes
  messages, runs the policy, and **commits transactions** that tell the
  kernel what to run where.
* The model is **asynchronous**: the kernel does not wait for the agent —
  a CPU with no committed task simply idles (or falls to a lower scheduling
  class), and decisions can be stale by the time they commit.

Variants evaluated by the paper:

* :func:`install_ghost_sol` — the SOL latency-optimised global FIFO: one
  agent on a dedicated core managing all ghost CPUs.
* :func:`install_ghost_percpu_fifo` — one agent per CPU, sharing that CPU
  with the tasks it schedules ("on every schedule operation, the scheduler
  first must be scheduled and run on the core").
* :func:`install_ghost_shinjuku` — the SOL arrangement running the
  Shinjuku policy with a 10 us preemption timer (Figure 2's competitor).

The agents are real simulated tasks (pinned, high-priority class), so
agent CPU consumption, wakeup latency, and message backlog are emergent —
which is what produces ghOSt's Table 4 tail blowup and Figure 2c batch-CPU
tax.
"""

from collections import deque

from repro.simkernel.futex import Futex
from repro.simkernel.program import Call, FutexWait, Run
from repro.simkernel.sched_class import DEFERRED_CPU, SchedClass
from repro.simkernel.task import TaskState
from repro.schedulers.fifo_native import NativeFifoClass

GHOST_POLICY = 30
GHOST_AGENT_POLICY = 31


class GhostSchedClass(SchedClass):
    """Kernel half of the ghOSt model: defer everything to the agent."""

    name = "ghost"

    def __init__(self, policy=GHOST_POLICY):
        super().__init__()
        self.policy = policy
        self.agent_model = None      # wired by install_*
        self.latched = {}            # cpu -> deque of committed pids
        self.running = {}            # cpu -> pid

    def attach_kernel(self, kernel):
        super().attach_kernel(kernel)
        self.latched = {c: deque() for c in kernel.topology.all_cpus()}
        self.running = {}

    def invocation_cost_ns(self, hook):
        # Every hook produces a message into the agent queue.
        return (super().invocation_cost_ns(hook)
                + self.kernel.config.ghost_msg_enqueue_ns)

    # -- all placement is deferred to the agent ---------------------------

    def select_task_rq(self, task, prev_cpu, wake_flags, waker_cpu=-1):
        return DEFERRED_CPU

    def _allowed(self, task):
        if task.allowed_cpus is None:
            return None
        return frozenset(task.allowed_cpus)

    def task_new(self, task, cpu):
        self.agent_model.post("new", task.pid, prio=task.nice,
                              allowed=self._allowed(task))

    def task_wakeup(self, task, cpu):
        self.agent_model.post("wakeup", task.pid, prio=task.nice,
                              allowed=self._allowed(task))

    def task_blocked(self, task, cpu):
        self.running.pop(cpu, None)
        self.agent_model.post("blocked", task.pid, cpu=cpu)

    def task_yield(self, task, cpu):
        self.running.pop(cpu, None)
        # Like a preemption, a yielded task needs a fresh commit before it
        # can run again; withdraw it into agent limbo.
        self.kernel.rqs[cpu].detach(task)
        self.kernel._limbo.add(task.pid)
        self.agent_model.post("yield", task.pid, cpu=cpu, prio=task.nice,
                              allowed=self._allowed(task))

    def task_preempt(self, task, cpu):
        self.running.pop(cpu, None)
        # The preempted task needs a fresh commit to run again; the kernel
        # queue entry is withdrawn back into agent limbo.
        self.kernel.rqs[cpu].detach(task)
        self.kernel._limbo.add(task.pid)
        self.agent_model.post("preempt", task.pid, cpu=cpu, prio=task.nice,
                              allowed=self._allowed(task))

    def task_dead(self, pid):
        for queue in self.latched.values():
            try:
                queue.remove(pid)
            except ValueError:
                pass
        for cpu, running_pid in list(self.running.items()):
            if running_pid == pid:
                del self.running[cpu]
        self.agent_model.post("dead", pid)

    def task_departed(self, task, cpu):
        self.task_dead(task.pid)

    def migrate_task_rq(self, task, new_cpu):
        pass

    # -- kernel-side execution of commits -----------------------------------

    def deliver_commit(self, pid, cpu):
        """A transaction arrived: attach the task and latch it for pick."""
        task = self.kernel.tasks.get(pid)
        if (task is None or task.state is not TaskState.RUNNABLE
                or pid not in self.kernel._limbo):
            # Stale decision (task ran, died, or blocked meanwhile).
            self.agent_model.post("commit_failed", pid)
            return
        if self.kernel.place_task(pid, cpu, kicker_cpu=None):
            self.latched[cpu].append(pid)
        else:
            self.agent_model.post("commit_failed", pid)

    def deliver_preempt(self, pid, cpu):
        """A preemption transaction: kick the CPU if the task still runs."""
        if self.running.get(cpu) == pid:
            self.kernel.resched_cpu(cpu, when="now")

    def pick_next_task(self, cpu):
        queue = self.latched[cpu]
        while queue:
            pid = queue.popleft()
            task = self.kernel.tasks.get(pid)
            if (task is not None and self.kernel.rqs[cpu].has(pid)
                    and task.state is TaskState.RUNNABLE):
                self.running[cpu] = pid
                self.agent_model.post("picked", pid, cpu=cpu)
                return pid
        return None

    def wakeup_preempt(self, cpu, task):
        return None


class GhostAgentModel:
    """Userspace agent state machine plus the policy it runs.

    One instance manages a set of CPUs.  ``post`` is the kernel-side
    message producer; the agent task's program consumes batches, charges
    per-message CPU time, and issues commit/preempt transactions with the
    configured latencies.
    """

    def __init__(self, kernel, ghost_class, managed_cpus, agent_cpu,
                 policy="fifo", preemption_ns=None, spin=False):
        self.kernel = kernel
        self.ghost_class = ghost_class
        self.managed_cpus = list(managed_cpus)
        self.agent_cpu = agent_cpu
        self.policy = policy
        self.preemption_ns = preemption_ns
        #: spin agents busy-poll a dedicated core (the SOL arrangement):
        #: they are never descheduled, so message handling needs no wakeup
        #: or context switch — only queueing and processing time.
        self.spin = spin
        self._spin_processing = False
        self.msgs = deque()
        self.futex = Futex(name=f"ghost-agent-{agent_cpu}")
        self.runnable = deque()       # high priority (nice <= 0)
        self.runnable_low = deque()   # low priority (nice > 0)
        self.prio = {}                # pid -> nice
        self.allowed = {}             # pid -> frozenset | None
        self.agent_task = None
        self.messages_processed = 0
        self.commits = 0

    # -- kernel-side producer ------------------------------------------------

    #: message kinds that demand an agent decision; informational ones
    #: ("picked") are consumed lazily with the next actionable batch --
    #: waking the agent for them would preempt the task it just latched.
    _ACTIONABLE = frozenset(
        {"new", "wakeup", "blocked", "yield", "preempt", "dead",
         "commit_failed"}
    )

    def post(self, kind, pid, cpu=None, prio=0, allowed=None):
        self.msgs.append((kind, pid, cpu, prio, allowed))
        if kind not in self._ACTIONABLE:
            return
        if self.spin:
            self.kernel.events.after(
                self.kernel.config.ghost_msg_enqueue_ns,
                self._spin_kick,
            )
        elif self.agent_task is not None:
            # Kick the agent; the event is harmless if it is already awake
            # (and avoids the lost-wakeup race around its block).
            self.kernel.events.after(
                self.kernel.config.ghost_msg_enqueue_ns,
                self._wake_agent,
            )

    def _wake_agent(self):
        if not self.msgs:
            return
        if self.agent_task.state is TaskState.BLOCKED:
            self.futex.remove_waiter(self.agent_task)
            self.kernel.wake_task(self.agent_task)

    # -- spin-mode processing (dedicated-core agents) -------------------------

    def _spin_kick(self):
        if self._spin_processing or not self.msgs:
            return
        self._spin_processing = True
        self._spin_schedule()

    def _batch_cost(self, batch):
        cfg = self.kernel.config
        return (cfg.ghost_agent_msg_ns
                + (batch - 1) * cfg.ghost_agent_batch_msg_ns)

    def _spin_schedule(self):
        batch = len(self.msgs)
        if batch == 0:
            self._spin_processing = False
            return
        self.kernel.events.after(self._batch_cost(batch), self._spin_done,
                                 batch)

    def _spin_done(self, batch):
        self._process_batch(batch)
        self._spin_schedule()

    # -- the agent program -----------------------------------------------------

    def agent_program(self):
        cfg = self.kernel.config

        def program():
            while True:
                if not self.msgs:
                    yield FutexWait(self.futex)
                    continue
                batch = len(self.msgs)
                yield Run(self._batch_cost(batch))
                yield Call(self._process_batch, (batch,))

        return program

    def _process_batch(self, batch):
        for _ in range(min(batch, len(self.msgs))):
            kind, pid, cpu, prio, allowed = self.msgs.popleft()
            self.messages_processed += 1
            self._handle(kind, pid, cpu, prio, allowed)
        self._dispatch()

    def _handle(self, kind, pid, cpu, prio, allowed):
        if kind in ("new", "wakeup", "preempt", "commit_failed"):
            if kind != "commit_failed":
                self.prio[pid] = prio
                self.allowed[pid] = allowed
            self._enqueue_runnable(pid)
        elif kind in ("blocked", "yield", "dead"):
            self._forget(pid)
            if kind == "yield":
                self._enqueue_runnable(pid)
        elif kind == "picked":
            pass  # informational

    def _enqueue_runnable(self, pid):
        if pid in self.runnable or pid in self.runnable_low:
            return
        if self.prio.get(pid, 0) > 0:
            self.runnable_low.append(pid)
        else:
            self.runnable.append(pid)

    def _forget(self, pid):
        for queue in (self.runnable, self.runnable_low):
            try:
                queue.remove(pid)
            except ValueError:
                pass

    # -- policy: commit work to free CPUs -------------------------------------

    def _cpu_free(self, cpu):
        ghost = self.ghost_class
        if ghost.running.get(cpu) is not None:
            return False
        if ghost.latched[cpu]:
            return False
        return True

    def _next_runnable(self, cpu):
        """FIFO-pop the first runnable task allowed on ``cpu``."""
        for queue in (self.runnable, self.runnable_low):
            for pid in queue:
                mask = self.allowed.get(pid)
                if mask is None or cpu in mask:
                    queue.remove(pid)
                    return pid
        return None

    def _dispatch(self):
        cfg = self.kernel.config
        for cpu in self.managed_cpus:
            if not self._cpu_free(cpu):
                continue
            pid = self._next_runnable(cpu)
            if pid is None:
                continue
            delay = cfg.ghost_txn_commit_ns
            if cpu != self.agent_cpu:
                delay += cfg.ghost_txn_remote_ns
            self.kernel.events.after(
                delay, self.ghost_class.deliver_commit, pid, cpu
            )
            self.commits += 1
            # Mark as provisionally latched so we don't double-commit the
            # CPU within this batch.
            self.ghost_class.latched[cpu].append(_PENDING)
            self.kernel.events.after(
                delay, self._clear_pending, cpu
            )
            if self.preemption_ns is not None:
                self.kernel.events.after(
                    delay + self.preemption_ns,
                    self._preempt_check, pid, cpu,
                )

    def _clear_pending(self, cpu):
        try:
            self.ghost_class.latched[cpu].remove(_PENDING)
        except ValueError:
            pass

    def _preempt_check(self, pid, cpu):
        cfg = self.kernel.config
        if self.ghost_class.running.get(cpu) == pid:
            self.kernel.events.after(
                cfg.ghost_txn_remote_ns,
                self.ghost_class.deliver_preempt, pid, cpu,
            )


_PENDING = -1


class _PerCpuGhostRouter:
    """Fan messages out to per-CPU agents (the ghOSt per-CPU FIFO model).

    Tasks are homed to a CPU at their first event (round robin), and all
    their subsequent messages go to that CPU's agent.
    """

    def __init__(self, agents_by_cpu, managed_cpus):
        self.agents = agents_by_cpu
        self.managed_cpus = list(managed_cpus)
        self.home = {}
        self._next = 0

    def post(self, kind, pid, cpu=None, prio=0, allowed=None):
        home = self.home.get(pid)
        if home is None:
            eligible = [c for c in self.managed_cpus
                        if allowed is None or c in allowed]
            if not eligible:
                eligible = self.managed_cpus
            home = eligible[self._next % len(eligible)]
            self._next += 1
            self.home[pid] = home
        if kind == "dead":
            self.home.pop(pid, None)
        self.agents[home].post(kind, pid, cpu=cpu, prio=prio,
                               allowed=allowed)


def _ensure_agent_class(kernel):
    for _prio, cls in kernel._classes:
        if cls.policy == GHOST_AGENT_POLICY:
            return cls
    agent_class = NativeFifoClass(policy=GHOST_AGENT_POLICY)
    kernel.register_sched_class(agent_class, priority=90)
    return agent_class


def _spawn_agent(kernel, model, cpu, name):
    task = kernel.spawn(
        model.agent_program(), name=name, policy=GHOST_AGENT_POLICY,
        allowed_cpus=frozenset({cpu}), origin_cpu=cpu,
    )
    model.agent_task = task
    return task


def install_ghost_sol(kernel, managed_cpus, agent_cpu,
                      policy=GHOST_POLICY, preemption_ns=None):
    """Install the SOL global-FIFO ghOSt arrangement.

    The agent runs on ``agent_cpu`` (dedicated) and manages
    ``managed_cpus``.  Returns (ghost_class, agent_model).
    """
    ghost = GhostSchedClass(policy=policy)
    kernel.register_sched_class(ghost, priority=50)
    model = GhostAgentModel(kernel, ghost, managed_cpus, agent_cpu,
                            policy="fifo", preemption_ns=preemption_ns,
                            spin=True)
    ghost.agent_model = model
    return ghost, model


def install_ghost_shinjuku(kernel, managed_cpus, agent_cpu,
                           policy=GHOST_POLICY, preemption_us=10):
    """SOL arrangement running the Shinjuku preemptive policy."""
    return install_ghost_sol(
        kernel, managed_cpus, agent_cpu, policy=policy,
        preemption_ns=preemption_us * 1_000,
    )


def install_ghost_percpu_fifo(kernel, managed_cpus, policy=GHOST_POLICY):
    """Install the per-CPU FIFO ghOSt arrangement.

    Each managed CPU hosts its own agent *on that CPU*, competing with the
    tasks it schedules.  Returns (ghost_class, router).
    """
    ghost = GhostSchedClass(policy=policy)
    kernel.register_sched_class(ghost, priority=50)
    _ensure_agent_class(kernel)
    agents = {}
    for cpu in managed_cpus:
        model = GhostAgentModel(kernel, ghost, [cpu], cpu, policy="fifo")
        agents[cpu] = model
        _spawn_agent(kernel, model, cpu, f"ghost-agent-{cpu}")
    router = _PerCpuGhostRouter(agents, managed_cpus)
    ghost.agent_model = router
    return ghost, router
