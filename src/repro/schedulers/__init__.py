"""Scheduler implementations.

Native (trusted, kernel-side) classes:

* :class:`~repro.schedulers.cfs.CfsSchedClass` — the Linux CFS baseline.
* :class:`~repro.schedulers.rt.RtSchedClass` — SCHED_FIFO/RR.
* :class:`~repro.schedulers.fifo_native.NativeFifoClass` — a minimal
  trusted FIFO, used by substrate tests and docs.
* :mod:`~repro.schedulers.ghost` — the ghOSt comparison model.

Enoki schedulers (implement :class:`repro.core.trait.EnokiScheduler` and
are loaded through the framework):

* :class:`~repro.schedulers.wfq.EnokiWfq` — weighted fair queuing
  (paper section 4.2.1).
* :class:`~repro.schedulers.fifo.EnokiFifo` — the paper's walk-through
  scheduler (section 3.1).
* :class:`~repro.schedulers.shinjuku.EnokiShinjuku` — section 4.2.2.
* :class:`~repro.schedulers.locality.EnokiLocality` — section 4.2.3.
* :class:`~repro.schedulers.arachne.EnokiCoreArbiter` — section 4.2.4.
* :class:`~repro.schedulers.nest.EnokiNest` — a Nest-style warm-core
  policy (the section 2 motivation, as an extension).
* :class:`~repro.schedulers.eevdf.EnokiEevdf` — EEVDF, the policy that
  replaced CFS in Linux 6.6, as a ~100-line trait implementation (the
  development-velocity thesis, demonstrated forward).
* :class:`~repro.schedulers.serverless.EnokiServerless` — an
  scx_serverless-style two-tier policy: short FaaS invocations run to
  completion, observed/declared long work is demoted to a fair backing
  queue.
"""

from repro.schedulers.arachne import EnokiCoreArbiter
from repro.schedulers.cfs import CfsSchedClass
from repro.schedulers.deadline import DeadlineSchedClass
from repro.schedulers.eevdf import EnokiEevdf
from repro.schedulers.fifo import EnokiFifo
from repro.schedulers.fifo_native import NativeFifoClass
from repro.schedulers.locality import EnokiLocality
from repro.schedulers.nest import EnokiNest
from repro.schedulers.rt import RtSchedClass
from repro.schedulers.serverless import EnokiServerless
from repro.schedulers.shinjuku import EnokiShinjuku
from repro.schedulers.wfq import EnokiWfq

__all__ = [
    "CfsSchedClass",
    "DeadlineSchedClass",
    "EnokiEevdf",
    "EnokiCoreArbiter",
    "EnokiFifo",
    "EnokiLocality",
    "EnokiNest",
    "EnokiServerless",
    "EnokiShinjuku",
    "EnokiWfq",
    "NativeFifoClass",
    "RtSchedClass",
]
