"""The paper's walk-through scheduler (section 3.1): per-core FCFS.

    "consider a simple scheduler that keeps a queue of tasks assigned to
    each core and schedules these tasks first come, first serve on each
    core"

It is written purely against the :class:`EnokiScheduler` trait: every task
it queues is represented by the ``Schedulable`` token the framework handed
it, and picking a task spends that token.  This file doubles as the
reference implementation for the docs' quickstart and carries the transfer
state used by the live-upgrade examples.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.core.trait import EnokiScheduler


@dataclass
class FifoTransferState:
    """State passed across a live upgrade of the FIFO scheduler."""

    queues: dict = field(default_factory=dict)   # cpu -> deque[(pid, token)]
    generation: int = 1


class EnokiFifo(EnokiScheduler):
    """First-come-first-serve per-core queues."""

    TRANSFER_TYPE = FifoTransferState

    def __init__(self, nr_cpus, policy=7):
        super().__init__()
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.queues = {cpu: deque() for cpu in range(nr_cpus)}
        self.lock = None
        #: bumped by each upgraded version, for the upgrade tests/examples
        self.generation = 1

    def module_init(self):
        self.lock = self.env.create_lock("fifo-queues")

    def get_policy(self):
        return self.policy

    # -- placement -------------------------------------------------------

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = (allowed_cpus if allowed_cpus is not None
                      else range(self.nr_cpus))
        with self.lock:
            return min(candidates, key=lambda c: len(self.queues[c]))

    # -- state tracking ------------------------------------------------------

    def _enqueue(self, sched):
        with self.lock:
            self.queues[sched.cpu].append((sched.pid, sched))

    def _drop(self, pid):
        with self.lock:
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        self._enqueue(sched)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        self._enqueue(sched)

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        self._drop(pid)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        self._enqueue(sched)

    def task_dead(self, pid):
        self._drop(pid)

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)
                        return entry[1]
        return None

    def migrate_task_rq(self, pid, new_cpu, sched):
        old_token = None
        with self.lock:
            for queue in self.queues.values():
                for entry in list(queue):
                    if entry[0] == pid:
                        queue.remove(entry)
                        old_token = entry[1]
                        break
            self.queues[new_cpu].append((pid, sched))
        return old_token

    # -- decisions --------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            if self.queues[cpu]:
                _pid, token = self.queues[cpu].popleft()
                return token
        return None

    def pnt_err(self, cpu, pid, err, sched):
        # Ownership of the rejected token returns to us; since it is stale
        # there is nothing useful to do but drop our bookkeeping for it.
        if sched is not None:
            self._drop(sched.pid)

    # -- live upgrade -------------------------------------------------------------

    def reregister_prepare(self):
        return FifoTransferState(queues=self.queues,
                                 generation=self.generation)

    def reregister_init(self, state):
        if state is not None:
            self.queues = state.queues
            for cpu in range(self.nr_cpus):
                self.queues.setdefault(cpu, deque())
            self.generation = state.generation + 1
