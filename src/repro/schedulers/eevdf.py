"""An EEVDF scheduler — the paper's thesis, demonstrated forward.

Enoki's pitch is development *velocity*: new scheduling algorithms should
be a few hundred lines against a stable trait.  Linux itself made the
paper's point shortly after publication: in 6.6 the kernel replaced CFS's
pick logic with **EEVDF** (Earliest Eligible Virtual Deadline First,
Stoica & Abdel-Wahab '95) — a change that took kernel releases to land.
Here the same policy change is this file.

Policy (the 6.6 sched/fair.c shape, simplified):

* every task accrues **vruntime** weighted by priority, as in WFQ;
* a task is **eligible** when it is not ahead of its fair share — its
  vruntime is at or below the queue's weighted average;
* each task carries a **virtual deadline** = vruntime at (re)queue time
  plus its base slice scaled by weight;
* pick = the *eligible* task with the *earliest virtual deadline* —
  latency-sensitive (short-slice) tasks get service sooner without
  starving anyone.

Inherits the Enoki WFQ scheduler's bookkeeping (runtime folding, queues,
stealing, upgrade state); only ordering and placement credit change,
which is exactly the kind of surgical policy swap the framework is for.
"""

from repro.schedulers.wfq import EnokiWfq, WfqTransferState
from repro.simkernel.task import NICE_0_WEIGHT


class EnokiEevdf(EnokiWfq):
    """Earliest Eligible Virtual Deadline First over the WFQ engine."""

    TRANSFER_TYPE = WfqTransferState

    #: base request slice (Linux 6.6's sysctl_sched_base_slice default)
    BASE_SLICE_NS = 750_000

    def __init__(self, nr_cpus, policy=13, base_slice_ns=None):
        super().__init__(nr_cpus, policy)
        if base_slice_ns is not None:
            self.BASE_SLICE_NS = base_slice_ns
        #: pid -> virtual deadline assigned at (re)queue time
        self.vdeadline = {}
        #: pid -> custom slice (latency hints could set this; shorter
        #: slice => earlier deadlines => snappier service)
        self.slice_ns = {}

    # ------------------------------------------------------------------
    # deadlines
    # ------------------------------------------------------------------

    def _assign_deadline(self, pid):
        weight = self.weights.get(pid, NICE_0_WEIGHT)
        slice_ns = self.slice_ns.get(pid, self.BASE_SLICE_NS)
        self.vdeadline[pid] = (
            self.vruntime.get(pid, 0)
            + slice_ns * NICE_0_WEIGHT // weight
        )

    def set_slice(self, pid, slice_ns):
        """Latency tuning: a shorter slice buys earlier deadlines."""
        self.slice_ns[pid] = max(1, int(slice_ns))

    # Re-derive a deadline whenever a task (re)enters a queue.

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        super().task_new(pid, tgid, runtime, runnable, prio, sched)
        self._assign_deadline(pid)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        super().task_wakeup(pid, agent_data, deferrable, last_run_cpu,
                            wake_up_cpu, waker_cpu, sched)
        self._assign_deadline(pid)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        super().task_preempt(pid, runtime, cpu_seqnum, cpu, from_switchto,
                             was_latched, sched)
        self._assign_deadline(pid)

    def task_dead(self, pid):
        super().task_dead(pid)
        self.vdeadline.pop(pid, None)
        self.slice_ns.pop(pid, None)

    # ------------------------------------------------------------------
    # the EEVDF pick
    # ------------------------------------------------------------------

    def _queue_average_vruntime(self, cpu):
        queue = self.queues[cpu]
        if not queue:
            return 0
        total_weight = 0
        weighted = 0
        for pid, _token in queue:
            weight = self.weights.get(pid, NICE_0_WEIGHT)
            total_weight += weight
            weighted += self.vruntime.get(pid, 0) * weight
        return weighted // max(1, total_weight)

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            for pid, runtime in runtimes.items():
                self._observe_runtime(pid, runtime)
            queue = self.queues[cpu]
            if not queue:
                return None
            average = self._queue_average_vruntime(cpu)
            eligible = [
                entry for entry in queue
                if self.vruntime.get(entry[0], 0) <= average
            ]
            pool = eligible if eligible else queue
            pid, token = min(
                pool,
                key=lambda entry: self.vdeadline.get(entry[0], 0),
            )
            queue.remove((pid, token))
            vr = self.vruntime.get(pid, 0)
            self.min_vruntime[cpu] = max(self.min_vruntime[cpu], vr)
            self.current[cpu] = (pid, self.last_runtime.get(pid, 0))
            return token
