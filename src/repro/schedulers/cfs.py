"""A native model of Linux's Completely Fair Scheduler.

This is the baseline the paper compares every Enoki scheduler against
(section 4.2.1 describes the behaviours modelled here):

* per-core run queues ordered by **vruntime**, the weighted accumulated
  runtime; the task/group with the lowest vruntime runs next;
* vruntime accrues inversely to priority weight (nice levels);
* newly woken tasks get ``max(old vruntime, min_vruntime - threshold)`` so
  sleepers do not hoard runtime debt;
* a woken task with lower vruntime than the current task preempts it when
  the system timer ticks;
* every task runs once per scheduling period (min 6 ms, stretched by task
  count), with a 750 us minimum granularity — the "750 us before being
  preempted by default" the paper cites in section 5.4;
* wake placement prefers the waker's LLC and idle siblings; periodic and
  new-idle balancing even out run-queue lengths, crossing NUMA boundaries
  only past an imbalance threshold.

This class is trusted kernel code (it implements the raw ``SchedClass``
interface); it exists so the Enoki schedulers have an honest CFS to race.
"""

import bisect

from repro.simkernel.sched_class import SchedClass, WF_FORK, WF_SYNC
from repro.simkernel.task import NICE_0_WEIGHT


class _CfsRq:
    """One core's fair run queue: a vruntime-ordered set of queued tasks."""

    __slots__ = ("cpu", "entries", "min_vruntime", "curr_pid",
                 "curr_start_runtime")

    def __init__(self, cpu):
        self.cpu = cpu
        self.entries = []           # sorted [(vruntime, pid)]
        self.min_vruntime = 0
        self.curr_pid = None
        self.curr_start_runtime = 0

    def insert(self, task):
        bisect.insort(self.entries, (task.vruntime, task.pid))

    def remove(self, task):
        key = (task.vruntime, task.pid)
        index = bisect.bisect_left(self.entries, key)
        if index < len(self.entries) and self.entries[index] == key:
            self.entries.pop(index)
            return True
        # vruntime may have moved since insertion; fall back to a scan.
        for i, (_vr, pid) in enumerate(self.entries):
            if pid == task.pid:
                self.entries.pop(i)
                return True
        return False

    def leftmost(self):
        return self.entries[0][1] if self.entries else None

    def __len__(self):
        return len(self.entries)


class CfsSchedClass(SchedClass):
    """The CFS baseline (with task-group fairness, see below).

    Group scheduling — "dividing CPU time proportionally between groups
    of tasks, and then within each group" (paper section 4.2.1) — is
    modelled with the flat approximation the kernel's hierarchy computes:
    a task accrues vruntime at the rate of its *effective* weight,

        eff_weight = task_weight * group_shares / group_runnable_weight

    so a group's tasks collectively receive the group's share however
    many of them are runnable.  With every task in the root group this
    reduces exactly to plain per-task weighting.
    """

    name = "cfs"

    ROOT_GROUP = "root"

    def __init__(self, policy=0):
        super().__init__()
        self.policy = policy
        self._rqs = None
        self._last_periodic_balance = None
        self.group_shares = {self.ROOT_GROUP: NICE_0_WEIGHT}
        self.group_of = {}           # pid -> group name (compat mirror)
        self._pending_shares = []    # groups created before attach

    def attach_kernel(self, kernel):
        super().attach_kernel(kernel)
        self._rqs = [_CfsRq(c) for c in kernel.topology.all_cpus()]
        self._last_periodic_balance = [0] * kernel.topology.nr_cpus
        for name, shares in self._pending_shares:
            self._materialize_group(name, shares)
        self._pending_shares = []

    # ------------------------------------------------------------------
    # task groups (cgroup cpu.shares equivalent)
    #
    # This used to be a flat per-class approximation; it is now a thin
    # adapter over the kernel's real hierarchy (kernel.groups), keeping
    # the old keyword API.  ``shares`` maps to the group's weight.
    # ------------------------------------------------------------------

    def create_group(self, name, shares=NICE_0_WEIGHT):
        """Create a task group with the given cpu.shares weight."""
        if shares <= 0:
            raise ValueError(f"group shares must be positive: {shares}")
        self.group_shares[name] = shares
        if self.kernel is None:
            self._pending_shares.append((name, shares))
        else:
            self._materialize_group(name, shares)

    def _materialize_group(self, name, shares):
        groups = self.kernel.groups
        if not groups.has(name):
            groups.create(name, weight=shares, policy=self.policy)

    def spawn_in_group(self, prog, group, **spawn_kwargs):
        """Spawn a task directly into a group (fork into a cgroup)."""
        if group not in self.group_shares:
            raise ValueError(f"unknown group {group!r}")
        spawn_group = group if group != self.ROOT_GROUP else None
        task = self.kernel.spawn(prog, policy=self.policy,
                                 group=spawn_group, **spawn_kwargs)
        self.group_of[task.pid] = group
        return task

    @property
    def _group_weight(self):
        """Per-cpu ``{group: runnable weight}`` (compat view over the
        hierarchy's runnable index; tests introspect this)."""
        kernel = self.kernel
        per_cpu = [dict() for _ in kernel.topology.all_cpus()]
        for group in kernel.groups.all_groups():
            if group.parent is None:
                continue
            for cpu, weight in enumerate(group.task_weight):
                if weight:
                    per_cpu[cpu][group.name] = weight
        return per_cpu

    def _effective_weight(self, task):
        if task.group is None:
            return task.weight
        return self.kernel.groups.effective_weight(task, task.cpu)

    # ------------------------------------------------------------------
    # vruntime accounting
    # ------------------------------------------------------------------

    def update_curr(self, task, delta_ns):
        task.vruntime += delta_ns * NICE_0_WEIGHT \
            // self._effective_weight(task)
        rq = self._rqs[task.cpu]
        if rq.curr_pid == task.pid:
            floor = task.vruntime
            if rq.entries:
                floor = min(floor, rq.entries[0][0])
            rq.min_vruntime = max(rq.min_vruntime, floor)

    def _sched_period(self, nr_running):
        cfg = self.kernel.config
        if nr_running > cfg.sched_latency_ns // cfg.sched_min_granularity_ns:
            return nr_running * cfg.sched_min_granularity_ns
        return cfg.sched_latency_ns

    def _slice_for(self, task, cpu):
        rq = self._rqs[cpu]
        krq = self.kernel.rqs[cpu]
        nr = max(1, krq.nr_running)
        period = self._sched_period(nr)
        my_weight = self._effective_weight(task)
        total_weight = my_weight
        for _vr, pid in rq.entries:
            total_weight += self._effective_weight(self.kernel.tasks[pid])
        share = period * my_weight // max(1, total_weight)
        return max(self.kernel.config.sched_min_granularity_ns, share)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def select_task_rq(self, task, prev_cpu, wake_flags, waker_cpu=-1):
        topo = self.kernel.topology
        allowed = [c for c in topo.all_cpus() if task.can_run_on(c)]
        if not allowed:
            return prev_cpu
        if len(allowed) == 1:
            return allowed[0]
        if wake_flags & WF_FORK:
            return self._find_idlest(allowed)
        if prev_cpu < 0 or prev_cpu >= topo.nr_cpus:
            prev_cpu = allowed[0]

        if (wake_flags & WF_SYNC and 0 <= waker_cpu < topo.nr_cpus
                and task.can_run_on(waker_cpu)):
            # Synchronous wakeup: the waker promises to sleep; co-locate.
            if self.kernel.rqs[waker_cpu].nr_queued == 0:
                return waker_cpu

        # Fast path: prev_cpu if idle (cache affinity).
        if task.can_run_on(prev_cpu) and self._is_idle(prev_cpu):
            return prev_cpu
        # Look for an idle CPU in the previous LLC, then the whole machine.
        home_llc = topo.llc_of(prev_cpu if task.can_run_on(prev_cpu)
                               else allowed[0])
        for cpu in topo.llc_members(home_llc):
            if task.can_run_on(cpu) and self._is_idle(cpu):
                return cpu
        for cpu in allowed:
            if self._is_idle(cpu):
                return cpu
        # No idle CPU: least-loaded allowed CPU, preferring the home LLC.
        def load_key(cpu):
            distance = topo.distance(prev_cpu, cpu)
            return (self.kernel.rqs[cpu].load_weight(), distance)

        return min(allowed, key=load_key)

    def _is_idle(self, cpu):
        rq = self.kernel.rqs[cpu]
        return rq.current is None and rq.nr_queued == 0

    def _find_idlest(self, allowed):
        def key(cpu):
            rq = self.kernel.rqs[cpu]
            return (rq.nr_running, rq.load_weight())

        return min(allowed, key=key)

    # ------------------------------------------------------------------
    # state tracking
    # ------------------------------------------------------------------

    def task_new(self, task, cpu):
        rq = self._rqs[cpu]
        # New tasks start at the end of the current period.
        task.vruntime = max(task.vruntime, rq.min_vruntime)
        task.vruntime += (self._sched_period(self.kernel.rqs[cpu].nr_running)
                          * NICE_0_WEIGHT // task.weight
                          // max(1, self.kernel.rqs[cpu].nr_running))
        rq.insert(task)

    def task_wakeup(self, task, cpu):
        rq = self._rqs[cpu]
        # place_entity: don't let sleepers bank unbounded credit.
        threshold = self.kernel.config.sched_latency_ns // 2
        task.vruntime = max(task.vruntime, rq.min_vruntime - threshold)
        rq.insert(task)

    def task_blocked(self, task, cpu):
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid = None
        else:
            rq.remove(task)

    def task_yield(self, task, cpu):
        # yield_task_fair: skip ahead of nothing, just requeue.
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid = None
        if rq.entries:
            task.vruntime = max(task.vruntime, rq.entries[-1][0])
        rq.insert(task)

    def task_preempt(self, task, cpu):
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid = None
        rq.insert(task)

    def task_dead(self, pid):
        for rq in self._rqs:
            if rq.curr_pid == pid:
                rq.curr_pid = None
        task = self.kernel.tasks.get(pid)
        if task is not None:
            for rq in self._rqs:
                rq.remove(task)
        self.group_of.pop(pid, None)

    def task_departed(self, task, cpu):
        self.task_dead(task.pid)

    def task_prio_changed(self, task, cpu):
        # Weight changed; vruntime accrual rate adjusts automatically.
        pass

    def migrate_task_rq(self, task, new_cpu):
        # Re-home the vruntime: subtract the old queue's baseline, add the
        # new one's, as migrate_task_rq_fair does.  (The kernel's group
        # runnable index re-homes itself in try_migrate.)
        old_cpu = None
        for rq in self._rqs:
            if rq.cpu != new_cpu and rq.remove(task):
                old_cpu = rq.cpu
                break
        if old_cpu is not None:
            task.vruntime -= self._rqs[old_cpu].min_vruntime
            task.vruntime += self._rqs[new_cpu].min_vruntime
        else:
            task.vruntime = max(task.vruntime,
                                self._rqs[new_cpu].min_vruntime)
        self._rqs[new_cpu].insert(task)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu):
        rq = self._rqs[cpu]
        pid = rq.leftmost()
        if pid is None:
            return None
        task = self.kernel.tasks[pid]
        rq.remove(task)
        rq.curr_pid = pid
        rq.curr_start_runtime = task.sum_exec_runtime_ns
        if rq.entries:
            rq.min_vruntime = max(rq.min_vruntime,
                                  min(task.vruntime, rq.entries[0][0]))
        else:
            rq.min_vruntime = max(rq.min_vruntime, task.vruntime)
        return pid

    def balance(self, cpu):
        """New-idle balance: pull from the busiest CPU when going idle."""
        if self._rqs[cpu].entries or self.kernel.rqs[cpu].nr_running:
            return None
        # Nothing queued anywhere means nothing to pull: skip the topology
        # scan entirely (this runs on every pick while CFS is idle).
        for rq in self._rqs:
            if rq.entries:
                break
        else:
            return None
        # New-idle balance must not rip cache-hot tasks off their CPU
        # (can_migrate_task's task_hot check); periodic balance may.
        return self._find_pull_candidate(cpu, allow_hot=False)

    def _find_pull_candidate(self, cpu, allow_hot=True):
        topo = self.kernel.topology
        cfg = self.kernel.config
        best_pid = None
        best_load = 1   # require at least one waiting task
        for scope, threshold in (
            (topo.siblings_in_llc(cpu), 1),
            (topo.all_cpus(), cfg.numa_imbalance_threshold),
        ):
            for other in scope:
                if other == cpu:
                    continue
                other_krq = self.kernel.rqs[other]
                waiting = len(self._rqs[other])
                if waiting < threshold or waiting <= best_load - 1:
                    continue
                pid = self._steal_candidate(other, cpu, allow_hot)
                if pid is not None:
                    best_pid = pid
                    best_load = waiting
            if best_pid is not None:
                return best_pid
        return best_pid

    def _steal_candidate(self, src_cpu, dst_cpu, allow_hot=True):
        """Pick a pullable task from src: prefer cache-cold tasks."""
        rq = self._rqs[src_cpu]
        cfg = self.kernel.config
        now = self.kernel.now
        fallback = None
        for _vr, pid in reversed(rq.entries):
            task = self.kernel.tasks[pid]
            if not task.can_run_on(dst_cpu):
                continue
            if fallback is None:
                fallback = pid
            if now - task.last_ran_ns >= cfg.sched_migration_cost_ns:
                return pid
        return fallback if allow_hot else None

    def task_tick(self, cpu, task):
        if task is None:
            return
        rq = self._rqs[cpu]
        krq = self.kernel.rqs[cpu]
        # Time-slice check.
        ran = task.sum_exec_runtime_ns - rq.curr_start_runtime
        if rq.entries and ran >= self._slice_for(task, cpu):
            self.kernel.resched_cpu(cpu, when="now")
        elif rq.entries and rq.entries[0][0] < task.vruntime:
            # A lower-vruntime task is waiting (e.g. woke recently):
            # preempt at the tick, as the paper describes.
            wakeup_gran = (self.kernel.config.sched_wakeup_granularity_ns
                           * NICE_0_WEIGHT // task.weight)
            if task.vruntime - rq.entries[0][0] > wakeup_gran:
                self.kernel.resched_cpu(cpu, when="now")
        # Periodic load balance.
        cfg = self.kernel.config
        if (self.kernel.now - self._last_periodic_balance[cpu]
                >= cfg.balance_interval_ns):
            self._last_periodic_balance[cpu] = self.kernel.now
            self._periodic_balance(cpu)

    def wakeup_preempt(self, cpu, task):
        krq = self.kernel.rqs[cpu]
        if krq.current is None:
            return "now"
        gran = (self.kernel.config.sched_wakeup_granularity_ns
                * NICE_0_WEIGHT // krq.current.weight)
        if task.vruntime + gran < krq.current.vruntime:
            return "tick"
        return None

    def _periodic_balance(self, cpu):
        """Even out queue lengths: pull from the busiest CPU in scope."""
        topo = self.kernel.topology
        cfg = self.kernel.config
        my_running = self.kernel.rqs[cpu].nr_running
        for scope, threshold in (
            (topo.siblings_in_llc(cpu), 2),
            (topo.all_cpus(), cfg.numa_imbalance_threshold + 1),
        ):
            busiest, busiest_n = None, my_running + threshold - 1
            for other in scope:
                if other == cpu:
                    continue
                n = self.kernel.rqs[other].nr_running
                if n > busiest_n:
                    busiest, busiest_n = other, n
            if busiest is None:
                continue
            pid = self._steal_candidate(busiest, cpu)
            if pid is not None:
                self.kernel.try_migrate(pid, cpu, self)
                return
