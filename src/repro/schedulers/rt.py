"""A native model of Linux's real-time scheduler class (SCHED_FIFO/RR).

The paper's section 2 notes Linux ships three mainline schedulers — the
real-time scheduler, the deadline scheduler, and CFS.  The substrate
models the RT class so experiments can layer latency-critical RT tasks
above CFS exactly as Linux stacks its classes, and so the class-stacking
machinery is exercised by a second native policy.

Semantics modelled:

* 100 static priorities (higher number = more urgent, like rt_priority);
* strict priority dispatch: the highest-priority runnable task always
  runs; equal priorities are FIFO, or round-robin with a 100 ms slice
  when a task is created with ``round_robin=True`` (SCHED_RR);
* an RT task preempts lower-priority RT tasks immediately on wakeup;
* a simple RT push balance: an overloaded CPU offers its second task to
  any CPU running lower-priority work.
"""

from collections import deque

from repro.simkernel.sched_class import SchedClass

RR_SLICE_NS = 100_000_000   # sched_rr_timeslice default (100 ms)


class _RtRq:
    """Per-CPU priority array, like rt_rq's bitmap + queues."""

    __slots__ = ("queues", "curr_pid", "curr_prio", "curr_slice_start")

    def __init__(self):
        self.queues = {}          # prio -> deque of pids
        self.curr_pid = None
        self.curr_prio = -1
        self.curr_slice_start = 0

    def push(self, prio, pid, front=False):
        queue = self.queues.setdefault(prio, deque())
        if front:
            queue.appendleft(pid)
        else:
            queue.append(pid)

    def pop_highest(self):
        if not self.queues:
            return None, -1
        prio = max(self.queues)
        pid = self.queues[prio].popleft()
        if not self.queues[prio]:
            del self.queues[prio]
        return pid, prio

    def peek_highest_prio(self):
        return max(self.queues) if self.queues else -1

    def remove(self, pid):
        for prio, queue in list(self.queues.items()):
            try:
                queue.remove(pid)
            except ValueError:
                continue
            if not queue:
                del self.queues[prio]
            return prio
        return None

    def second_task(self):
        """A candidate to push away: the head below the top task."""
        if not self.queues:
            return None
        prios = sorted(self.queues, reverse=True)
        # Anything queued is waiting behind the current task.
        return self.queues[prios[0]][0] if self.queues[prios[0]] else None


class RtSchedClass(SchedClass):
    """Fixed-priority preemptive scheduling (SCHED_FIFO / SCHED_RR)."""

    name = "rt"

    def __init__(self, policy=2):
        super().__init__()
        self.policy = policy
        self._rqs = None
        self.rt_priority = {}     # pid -> static priority (1..99)
        self.round_robin = {}     # pid -> bool
        self._pending = None      # (priority, rr) during spawn_rt
        self._rr_expired = set()  # pids preempted by slice expiry

    def attach_kernel(self, kernel):
        super().attach_kernel(kernel)
        self._rqs = [_RtRq() for _ in kernel.topology.all_cpus()]

    # -- task admission ------------------------------------------------------

    def set_rt_priority(self, pid, priority, round_robin=False):
        """Assign the static priority (prefer :meth:`spawn_rt`, which
        applies the priority before placement)."""
        if not 1 <= priority <= 99:
            raise ValueError(f"rt priority out of range: {priority}")
        self.rt_priority[pid] = priority
        self.round_robin[pid] = round_robin

    def spawn_rt(self, prog, priority, round_robin=False, **spawn_kwargs):
        """Spawn a task under this class with its priority pre-assigned,
        so placement and queueing see the real priority from the start
        (like sched_setscheduler before the first wakeup)."""
        if not 1 <= priority <= 99:
            raise ValueError(f"rt priority out of range: {priority}")
        self._pending = (priority, round_robin)
        try:
            task = self.kernel.spawn(prog, policy=self.policy,
                                     **spawn_kwargs)
            self.rt_priority[task.pid] = priority
            self.round_robin[task.pid] = round_robin
        finally:
            self._pending = None
        return task

    def _prio(self, pid):
        prio = self.rt_priority.get(pid)
        if prio is not None:
            return prio
        if self._pending is not None:
            return self._pending[0]
        return 1

    # -- placement --------------------------------------------------------------

    def select_task_rq(self, task, prev_cpu, wake_flags, waker_cpu=-1):
        """Prefer a CPU running lower-priority (or no) RT work."""
        best, best_key = None, None
        my_prio = self._prio(task.pid)
        for cpu in self.kernel.topology.all_cpus():
            if not task.can_run_on(cpu):
                continue
            rq = self._rqs[cpu]
            running = rq.curr_prio
            if running < my_prio:
                key = (0, running, self.kernel.rqs[cpu].nr_running)
            else:
                key = (1, rq.peek_highest_prio(),
                       self.kernel.rqs[cpu].nr_running)
            if best_key is None or key < best_key:
                best, best_key = cpu, key
        return best if best is not None else prev_cpu

    # -- state tracking ------------------------------------------------------------

    def task_new(self, task, cpu):
        self._rqs[cpu].push(self._prio(task.pid), task.pid)

    def task_wakeup(self, task, cpu):
        self._rqs[cpu].push(self._prio(task.pid), task.pid)

    def task_blocked(self, task, cpu):
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid, rq.curr_prio = None, -1
        else:
            rq.remove(task.pid)

    def task_preempt(self, task, cpu):
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid, rq.curr_prio = None, -1
        if task.pid in self._rr_expired:
            # SCHED_RR slice expiry: rotate to the back of the level.
            self._rr_expired.discard(task.pid)
            rq.push(self._prio(task.pid), task.pid)
        else:
            # Preempted by something more urgent: keep the front slot.
            rq.push(self._prio(task.pid), task.pid, front=True)

    def task_yield(self, task, cpu):
        rq = self._rqs[cpu]
        if rq.curr_pid == task.pid:
            rq.curr_pid, rq.curr_prio = None, -1
        rq.push(self._prio(task.pid), task.pid)   # back of its level

    def task_dead(self, pid):
        for rq in self._rqs:
            if rq.curr_pid == pid:
                rq.curr_pid, rq.curr_prio = None, -1
            rq.remove(pid)
        self.rt_priority.pop(pid, None)
        self.round_robin.pop(pid, None)

    def task_departed(self, task, cpu):
        self.task_dead(task.pid)

    def migrate_task_rq(self, task, new_cpu):
        for rq in self._rqs:
            rq.remove(task.pid)
        self._rqs[new_cpu].push(self._prio(task.pid), task.pid)

    # -- decisions --------------------------------------------------------------------

    def pick_next_task(self, cpu):
        rq = self._rqs[cpu]
        pid, prio = rq.pop_highest()
        if pid is None:
            return None
        rq.curr_pid, rq.curr_prio = pid, prio
        rq.curr_slice_start = self.kernel.now
        return pid

    def balance(self, cpu):
        """RT pull: an idle CPU takes waiting RT work from elsewhere."""
        if self._rqs[cpu].queues or self.kernel.rqs[cpu].nr_running:
            return None
        best_pid, best_prio = None, 0
        for other, rq in enumerate(self._rqs):
            if other == cpu:
                continue
            candidate = rq.second_task() if rq.curr_pid is not None \
                else None
            if candidate is None and rq.queues:
                prios = sorted(rq.queues, reverse=True)
                candidate = rq.queues[prios[0]][0]
            if candidate is None:
                continue
            task = self.kernel.tasks.get(candidate)
            if task is None or not task.can_run_on(cpu):
                continue
            prio = self._prio(candidate)
            if prio > best_prio:
                best_pid, best_prio = candidate, prio
        return best_pid

    def task_tick(self, cpu, task):
        if task is None:
            return
        rq = self._rqs[cpu]
        if not self.round_robin.get(task.pid, False):
            return
        if (self.kernel.now - rq.curr_slice_start >= RR_SLICE_NS
                and rq.queues
                and rq.peek_highest_prio() >= self._prio(task.pid)):
            self._rr_expired.add(task.pid)
            self.kernel.resched_cpu(cpu, when="now")

    def wakeup_preempt(self, cpu, task):
        rq = self._rqs[cpu]
        if self._prio(task.pid) > rq.curr_prio:
            return "now"
        return None
