"""The Enoki Shinjuku scheduler (paper section 4.2.2).

    "Our scheduler implements an approximation of a first-come-first-serve
    queue of tasks with fast preemption across the multiple kernel
    run-queues.  Our preemption slice is 10 us instead of 5 us to prevent
    overloading the scheduler.  This scheduler was implemented in 285
    lines of code."

Mechanics:

* A global arrival order (sequence numbers) is approximated over per-core
  queues; when a core empties, ``balance`` pulls the globally-oldest
  waiting task, keeping dispatch close to true FCFS.
* Every pick re-arms a 10 us resched timer; the fired timer preempts the
  running task, which re-enters the queue at the back — this is what keeps
  long range-queries from blocking short GETs (Figure 2).
* The paper notes this scheduler's slightly higher Table 3 latency comes
  from arming the timer on every operation; the framework charges that
  cost (``timer_arm_cost_ns``).
"""

from bisect import insort
from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.trait import EnokiScheduler

_SEQ = itemgetter(0)


@dataclass
class ShinjukuTransferState:
    """State passed across a live upgrade of the Shinjuku scheduler."""

    queues: dict = field(default_factory=dict)
    next_seq: int = 0
    generation: int = 1


class EnokiShinjuku(EnokiScheduler):
    """Centralised-FCFS approximation with microsecond-scale preemption."""

    TRANSFER_TYPE = ShinjukuTransferState

    def __init__(self, nr_cpus, policy=8, preemption_us=10,
                 worker_cpus=None):
        super().__init__()
        self.nr_cpus = nr_cpus
        self.policy = policy
        self.preemption_ns = preemption_us * 1_000
        #: the CPUs this scheduler will place tasks on (the RocksDB setup
        #: reserves cores for the load generator and background work)
        self.worker_cpus = (list(worker_cpus) if worker_cpus is not None
                            else list(range(nr_cpus)))
        self.queues = {cpu: [] for cpu in range(nr_cpus)}  # [(seq,pid,tok)]
        self.next_seq = 0
        self.generation = 1
        self.lock = None

    def module_init(self):
        self.lock = self.env.create_lock("shinjuku-queues")

    def get_policy(self):
        return self.policy

    # ------------------------------------------------------------------
    # placement: shortest queue among the worker cores
    # ------------------------------------------------------------------

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = [c for c in self.worker_cpus
                      if allowed_cpus is None or c in allowed_cpus]
        if not candidates:
            candidates = (list(allowed_cpus) if allowed_cpus
                          else list(range(self.nr_cpus)))
        with self.lock:
            return min(candidates, key=lambda c: len(self.queues[c]))

    # ------------------------------------------------------------------
    # FCFS state
    # ------------------------------------------------------------------

    def _push(self, sched, pid):
        # Queues stay sorted by sequence at all times.  Normal pushes use
        # a fresh (monotonic) sequence so the insort lands at the back;
        # only migration's adopted front-of-line sequences insert earlier.
        self.next_seq += 1
        insort(self.queues[sched.cpu], (self.next_seq, pid, sched),
               key=_SEQ)

    def _remove(self, pid):
        token = None
        for queue in self.queues.values():
            for entry in list(queue):
                if entry[1] == pid:
                    queue.remove(entry)
                    token = entry[2]
        return token

    def task_new(self, pid, tgid, runtime, runnable, prio, sched):
        with self.lock:
            self._push(sched, pid)

    def task_wakeup(self, pid, agent_data, deferrable, last_run_cpu,
                    wake_up_cpu, waker_cpu, sched):
        with self.lock:
            self._push(sched, pid)

    def task_blocked(self, pid, runtime, cpu_seqnum, cpu, from_switchto):
        with self.lock:
            self._remove(pid)

    def task_preempt(self, pid, runtime, cpu_seqnum, cpu, from_switchto,
                     was_latched, sched):
        # Preempted tasks go to the BACK of the global order: this is the
        # Shinjuku processor-sharing approximation.
        with self.lock:
            self._push(sched, pid)

    def task_dead(self, pid):
        with self.lock:
            self._remove(pid)

    def task_departed(self, pid, cpu_seqnum, cpu, from_switchto,
                      was_current):
        with self.lock:
            return self._remove(pid)

    def migrate_task_rq(self, pid, new_cpu, sched):
        with self.lock:
            old = self._remove(pid)
            # Keep the arrival order: re-insert with a preserved sequence
            # if we knew it; the old entry is gone, so order by the front.
            self.next_seq += 1
            seq = self.next_seq
            if old is not None:
                # Preserve FCFS position as well as we can: adopt the
                # minimum sequence currently queued minus a step.
                seq = min(
                    (entry[0] for queue in self.queues.values()
                     for entry in queue), default=self.next_seq,
                ) - 1
            insort(self.queues[new_cpu], (seq, pid, sched), key=_SEQ)
        return old

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        with self.lock:
            queue = self.queues[cpu]
            if not queue:
                return None
            _seq, _pid, token = queue.pop(0)
        # Re-arm the preemption timer on every dispatch ("it starts a
        # reschedule timer on every operation").
        self.env.start_resched_timer(cpu, self.preemption_ns)
        return token

    def pnt_err(self, cpu, pid, err, sched):
        if sched is not None:
            with self.lock:
                self._remove(sched.pid)

    def balance(self, cpu):
        """Approximate the global FCFS: an idle worker core pulls the
        globally-oldest waiting task."""
        if cpu not in self.worker_cpus:
            return None
        with self.lock:
            if self.queues[cpu]:
                return None
            oldest = None
            for other, queue in self.queues.items():
                if other == cpu or not queue:
                    continue
                head = queue[0]
                if oldest is None or head[0] < oldest[0]:
                    oldest = head
            if oldest is None:
                return None
            return oldest[1]

    # ------------------------------------------------------------------
    # live upgrade
    # ------------------------------------------------------------------

    def reregister_prepare(self):
        return ShinjukuTransferState(queues=self.queues,
                                     next_seq=self.next_seq,
                                     generation=self.generation)

    def reregister_init(self, state):
        if state is None:
            return
        self.queues = state.queues
        self.next_seq = state.next_seq
        self.generation = state.generation + 1
        for cpu in range(self.nr_cpus):
            self.queues.setdefault(cpu, [])
        # Re-establish the sorted invariant on adopted queues.
        for queue in self.queues.values():
            queue.sort(key=_SEQ)
