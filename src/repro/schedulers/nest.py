"""A Nest-inspired Enoki scheduler: keep tasks on warm cores.

The paper's motivation section cites Nest (Lawall et al., EuroSys '22):

    "Nest improves energy efficiency for jobs with fewer tasks than cores
    by reusing warm cores rather than spreading tasks across many cold
    cores."

This scheduler demonstrates the claim that follows — "Because these
schedulers do not need to work well in all circumstances, they can
potentially be much smaller and simpler than CFS" — as an Enoki policy:

* a **primary nest** of cores absorbs all placements while it has
  capacity; cores outside the nest are left idle (and drop into deep
  C-states, which is the energy win);
* the nest grows when its cores are all busy with queued work, and
  shrinks after a core stays idle past a decay period;
* within a core, scheduling is plain vruntime WFQ (inherited).

Cold-start avoidance is directly measurable in the substrate: the deep
idle-exit penalty (``idle_exit_deep_ns``) applies exactly to the wakeups
a Nest placement avoids.  ``benchmarks/bench_ablation_nest.py`` compares
warm-core reuse against spreading placement.
"""

from repro.schedulers.wfq import EnokiWfq, WfqTransferState


class EnokiNest(EnokiWfq):
    """Warm-core-first placement over the WFQ engine."""

    TRANSFER_TYPE = WfqTransferState

    #: nest shrink: a nest core idle this long is released
    DECAY_PICKS = 64

    def __init__(self, nr_cpus, policy=12, initial_nest=1):
        super().__init__(nr_cpus, policy)
        self.nest = list(range(min(initial_nest, nr_cpus)))
        self._idle_picks = {cpu: 0 for cpu in range(nr_cpus)}
        self.expansions = 0
        self.contractions = 0

    # -- placement: the nest ----------------------------------------------

    def _nest_load(self, cpu):
        return len(self.queues[cpu]) + (1 if cpu in self.current else 0)

    def select_task_rq(self, pid, prev_cpu, waker_cpu, wake_flags,
                       allowed_cpus):
        candidates = (set(allowed_cpus) if allowed_cpus is not None
                      else set(range(self.nr_cpus)))
        with self.lock:
            # 1. A free core inside the nest (warm!).
            for cpu in self.nest:
                if cpu in candidates and self._nest_load(cpu) == 0:
                    return cpu
            # 2. Grow the nest: claim the first eligible cold core.
            for cpu in range(self.nr_cpus):
                if cpu not in self.nest and cpu in candidates:
                    self.nest.append(cpu)
                    self._idle_picks[cpu] = 0
                    self.expansions += 1
                    return cpu
            # 3. Everything is in the nest: least-loaded eligible core.
            eligible = [c for c in self.nest if c in candidates] \
                or sorted(candidates)
            return min(eligible, key=self._nest_load)

    # -- nest decay ------------------------------------------------------------

    def pick_next_task(self, cpu, curr_pid, curr_runtime, runtimes):
        token = super().pick_next_task(cpu, curr_pid, curr_runtime,
                                       runtimes)
        with self.lock:
            if token is None:
                self._idle_picks[cpu] = self._idle_picks.get(cpu, 0) + 1
                if (self._idle_picks[cpu] >= self.DECAY_PICKS
                        and cpu in self.nest and len(self.nest) > 1):
                    self.nest.remove(cpu)
                    self.contractions += 1
            else:
                self._idle_picks[cpu] = 0
                if cpu not in self.nest:
                    # Work landed outside the nest (migration/steal):
                    # adopt the core, it is warm now.
                    self.nest.append(cpu)
        return token

    def balance(self, cpu):
        # Only nest members steal; cold cores stay asleep.
        if cpu not in self.nest:
            return None
        return super().balance(cpu)
