"""schbench: the scheduler wakeup-latency benchmark (Tables 4 and 6).

Paper, section 5.2:

    "This benchmark starts a number of message threads and worker threads.
    Each message thread and its worker threads send messages back and
    forth.  Schbench reports the median and 99% tail latency of task
    schedules throughout the benchmark."

Structure ported from the real benchmark:

* each worker sleeps on its **own futex**; the message thread stamps the
  round start, then wakes its workers one by one (the wake syscalls
  serialise, so later workers observe more latency — this is why the
  paper's 40-worker medians are roughly double its 2-worker medians);
* a woken worker records ``now - round_stamp`` as its wakeup latency,
  performs a jittered burst of CPU work, posts a reply, and sleeps again;
* the message thread collects all replies, then sleeps a jittered interval
  — long enough for worker cores to enter deep idle, which is what puts
  real schbench medians in the tens of microseconds on an idle machine;
* message threads start staggered and drift independently, so rounds
  occasionally collide — the collisions are what schedulers with a
  centralised bottleneck (the ghOSt agent) turn into a 99th-percentile
  blowup.

The futex wakes deliberately do *not* set WF_SYNC; section 5.5 builds its
locality experiment on exactly that property, and ``hint_locality=True``
reproduces the paper's modified schbench for Table 6.
"""

import random
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.simkernel.clock import msecs, usecs
from repro.simkernel.futex import Futex
from repro.simkernel.program import (
    Call,
    FutexWait,
    FutexWake,
    Run,
    SemDown,
    SemUp,
    SendHint,
    Sleep,
    Spawn,
)
from repro.simkernel.semaphore import Semaphore


@dataclass
class SchbenchResult:
    """Wakeup-latency distribution of the worker threads."""

    samples_us: list = field(default_factory=list)
    message_threads: int = 0
    workers_per_thread: int = 0
    scheduler: str = ""

    @property
    def p50_us(self):
        return percentile(self.samples_us, 50)

    @property
    def p99_us(self):
        return percentile(self.samples_us, 99)


def run_schbench(kernel, policy, message_threads=2, workers_per_thread=2,
                 warmup_ns=msecs(50), duration_ns=msecs(500),
                 think_ns=usecs(30), interval_ns=msecs(5),
                 hint_locality=False, affinity=None, seed=None,
                 scheduler_name=""):
    """Run schbench on a configured kernel; returns the latency samples."""
    rng = random.Random(seed if seed is not None else kernel.config.seed)
    end_at = kernel.now + warmup_ns + duration_ns
    measure_from = kernel.now + warmup_ns
    samples_us = []
    stop = {"flag": False}

    def worker(group, futex, reply_sem, stamp_box):
        def prog():
            while True:
                yield FutexWait(futex)
                now = yield Call(lambda: kernel.now)
                if stop["flag"]:
                    yield SemUp(reply_sem)
                    return
                if now >= measure_from and stamp_box["t"] is not None:
                    samples_us.append((now - stamp_box["t"]) / 1_000.0)
                burst = int(think_ns * rng.uniform(0.6, 1.4))
                yield Run(burst)
                yield SemUp(reply_sem)
        return prog

    def messenger(group):
        reply_sem = Semaphore(0, name=f"schbench-reply-{group}")
        stamp_box = {"t": None}
        futexes = [Futex(name=f"schbench-w{group}.{i}")
                   for i in range(workers_per_thread)]

        def prog():
            if hint_locality:
                # Co-locate the message thread itself with its group.
                yield SendHint({"tid": None, "locality": group})
            for index in range(workers_per_thread):
                pid = yield Spawn(
                    worker(group, futexes[index], reply_sem, stamp_box),
                    name=f"schbench-w{group}.{index}",
                    allowed_cpus=affinity,
                )
                if hint_locality:
                    yield SendHint({"tid": pid, "locality": group})
            # Give every worker time to reach its futex (generous slack so
            # even agent-delegated schedulers have placed them all).
            yield Sleep(msecs(1))
            # Stagger the message threads so rounds drift independently.
            yield Sleep(int(interval_ns * group / max(1, message_threads)))
            while True:
                now = yield Call(lambda: kernel.now)
                if now >= end_at:
                    stop["flag"] = True
                stamp_box["t"] = now
                for futex in futexes:
                    yield FutexWake(futex, 1)
                for _ in range(workers_per_thread):
                    yield SemDown(reply_sem)
                if stop["flag"]:
                    return
                yield Sleep(int(interval_ns * rng.uniform(0.5, 1.5)))
        return prog

    for group in range(message_threads):
        kernel.spawn(messenger(group), name=f"schbench-m{group}",
                     policy=policy, allowed_cpus=affinity)

    kernel.run_until_idle()
    return SchbenchResult(
        samples_us=samples_us,
        message_threads=message_threads,
        workers_per_thread=workers_per_thread,
        scheduler=scheduler_name,
    )
