"""The batch/background application co-located with RocksDB (Fig 2b/2c).

A thread-per-core CPU-bound application (paper: run at nice 19 under CFS
for the CFS/Enoki experiments, and as low-priority ghOSt tasks for the
ghOSt experiment).  Figure 2c reports how many CPUs' worth of time it
obtains while the latency-critical workload runs.
"""

from dataclasses import dataclass

from repro.simkernel.clock import msecs
from repro.simkernel.program import Call, Run


@dataclass
class BatchApp:
    """Handle for the co-located batch application."""

    kernel: object
    tgid: int
    started_ns: int

    def cpu_share(self, since_ns=None, until_ns=None):
        """Average CPUs held since start (Figure 2c's y-axis)."""
        start = since_ns if since_ns is not None else self.started_ns
        end = until_ns if until_ns is not None else self.kernel.now
        window = max(1, end - start)
        return self.kernel.stats.busy_ns_for_tgid(self.tgid) / window


def start_batch_app(kernel, policy, cpus, threads_per_cpu=1, nice=19,
                    chunk_ns=msecs(2)):
    """Launch the batch application; it runs until the simulation ends.

    Each thread loops over finite chunks so a terminating workload drains
    naturally: when nothing else is runnable the chunks still consume CPU,
    but the tasks exit once the kernel's stop flag is raised.
    """
    stop = {"flag": False}
    affinity = frozenset(cpus)
    tgid_holder = {}

    def batch_thread():
        def prog():
            while not stop["flag"]:
                yield Run(chunk_ns)
                yield Call(lambda: None)
        return prog

    first = None
    for index in range(len(cpus) * threads_per_cpu):
        task = kernel.spawn(
            batch_thread(), name=f"batch-{index}", policy=policy,
            nice=nice, allowed_cpus=affinity,
            origin_cpu=cpus[index % len(cpus)],
            tgid=tgid_holder.get("tgid"),
        )
        if first is None:
            first = task
            tgid_holder["tgid"] = task.tgid

    app = BatchApp(kernel=kernel, tgid=first.tgid, started_ns=kernel.now)
    app.stop = lambda: stop.__setitem__("flag", True)
    return app
