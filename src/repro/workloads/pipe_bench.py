"""``perf bench sched pipe``: the scheduler-latency microbenchmark.

Paper, section 5.2:

    "This benchmark starts two tasks that send 1 million messages back and
    forth using the pipe system call.  After each message, the sending
    task sleeps until the other task responds.  By default, all schedulers
    put the two tasks on different cores.  We also ran the benchmarks
    forcing both tasks to be on the same core."

Table 3 reports microseconds per wakeup; each round trip is two messages /
two wakeups, so the metric is ``total_time / (2 * rounds)``.
"""

from dataclasses import dataclass

from repro.simkernel.pipe import Pipe
from repro.simkernel.program import Call, PipeRead, PipeWrite


@dataclass
class PipeBenchResult:
    """Outcome of one sched-pipe run."""

    rounds: int
    total_ns: int
    measured_ns: int
    measured_messages: int
    same_core: bool
    scheduler: str = ""

    @property
    def latency_us_per_message(self):
        """Microseconds per message (== per wakeup), the Table 3 metric."""
        if self.measured_messages == 0:
            return 0.0
        return self.measured_ns / self.measured_messages / 1_000.0


def run_pipe_benchmark(kernel, policy, rounds=2_000, same_core=False,
                       warmup_rounds=50, scheduler_name="",
                       pin_two_cores=False, group=None):
    """Run the ping-pong on an already-configured kernel.

    ``policy`` selects the scheduler class under test for both tasks.
    ``same_core`` pins both tasks to CPU 0 (the paper's one-core case).
    ``pin_two_cores`` pins the tasks to CPUs 0 and 1, forcing the paper's
    default two-core configuration even on schedulers whose placement
    would co-locate the pair.  ``group`` places both tasks in a task
    group (the hierarchy-overhead gate runs the same ping-pong flat and
    grouped).
    """
    ping, pong = Pipe("ping"), Pipe("pong")
    marks = {}

    def mark(name):
        marks[name] = kernel.now

    def sender():
        for _ in range(warmup_rounds):
            yield PipeWrite(ping, b"w")
            yield PipeRead(pong)
        yield Call(mark, ("start",))
        for _ in range(rounds):
            yield PipeWrite(ping, b"m")
            yield PipeRead(pong)
        yield Call(mark, ("end",))

    def receiver():
        for _ in range(warmup_rounds + rounds):
            yield PipeRead(ping)
            yield PipeWrite(pong, b"r")

    if same_core:
        sender_affinity = receiver_affinity = frozenset({0})
    elif pin_two_cores:
        sender_affinity = frozenset({0})
        receiver_affinity = frozenset({1})
    else:
        sender_affinity = receiver_affinity = None
    kernel.spawn(sender, name="pipe-sender", policy=policy,
                 allowed_cpus=sender_affinity, group=group)
    kernel.spawn(receiver, name="pipe-receiver", policy=policy,
                 allowed_cpus=receiver_affinity, origin_cpu=0, group=group)
    kernel.run_until_idle()

    measured = marks["end"] - marks["start"]
    return PipeBenchResult(
        rounds=rounds,
        total_ns=kernel.now,
        measured_ns=measured,
        measured_messages=2 * rounds,
        same_core=same_core,
        scheduler=scheduler_name,
    )
