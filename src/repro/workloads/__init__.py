"""The paper's benchmark workloads, structurally ported to the substrate.

* :mod:`~repro.workloads.pipe_bench` — ``perf bench sched pipe`` (Table 3).
* :mod:`~repro.workloads.schbench` — schbench (Table 4, Table 6, §5.7).
* :mod:`~repro.workloads.rocksdb` — the RocksDB-style dispersed-load server
  (Figure 2) plus the co-located batch application.
* :mod:`~repro.workloads.memcached` — the memcached/mutilate-style workload
  (Figure 3).
* :mod:`~repro.workloads.apps` — 36 NAS/Phoronix-like application profiles
  (Table 5).
* :mod:`~repro.workloads.fairness` — the appendix A.1 functional
  equivalence suite.
* :mod:`~repro.workloads.faas` — the Azure-Functions-style serverless
  trace sampler + open-loop warm/cold container-pool executor (the
  ROADMAP's production-scale FaaS scenario).
* :mod:`~repro.workloads.multitenant` — the noisy-neighbour episode over
  hierarchical task groups: weighted tenants plus a bandwidth-capped one
  (``repro bench --multitenant``).
"""
