"""Multi-tenant noisy-neighbour workload over hierarchical task groups.

Three tenants share one machine through the kernel's task-group
hierarchy (:mod:`repro.simkernel.groups`):

* **tenant-a** — the paying customer: weight 2048, CPU-bound workers.
* **tenant-b** — the noisy neighbour: weight 1024, CPU-bound spinners
  that would monopolise the machine under a flat scheduler.
* **tenant-c** — the capped batch tenant: a CPU bandwidth quota
  (2 ms / 10 ms by default) throttles it regardless of demand.

Every tenant offers more work than its share, so the expected outcome is
exactly the CFS bandwidth-control contract: tenant-c is pinned at
``quota/period`` of the machine and tenants a/b split the residual
2:1 by weight.  The result carries per-tenant runtimes and throttle
statistics so tests (and ``repro bench --multitenant``) can assert both
halves of that contract.
"""

from dataclasses import dataclass, field

from repro.simkernel.clock import msecs
from repro.simkernel.program import Run

#: the default three-tenant contract described in the module docstring
DEFAULT_TENANTS = (
    {"name": "tenant-a", "weight": 2048, "tasks": 4, "nice": 0},
    {"name": "tenant-b", "weight": 1024, "tasks": 4, "nice": 0},
    {"name": "tenant-c", "weight": 1024, "tasks": 2, "nice": 0,
     "quota_ns": 2_000_000, "period_ns": 10_000_000},
)


@dataclass
class MultitenantResult:
    """Per-tenant outcome of one noisy-neighbour episode."""

    duration_ns: int = 0
    capacity_ns: int = 0                      # nr_cpus * duration
    completed: bool = False                   # kernel drained afterwards
    tenants: dict = field(default_factory=dict)   # name -> metrics dict

    def runtime_ns(self, tenant):
        return self.tenants[tenant]["runtime_ns"]

    def share(self, tenant):
        """Fraction of machine capacity the tenant consumed."""
        if self.capacity_ns == 0:
            return 0.0
        return self.runtime_ns(tenant) / self.capacity_ns

    def residual_ratio(self, a, b):
        """Runtime ratio between two uncapped tenants (weight check)."""
        denom = self.runtime_ns(b)
        return self.runtime_ns(a) / denom if denom else float("inf")


def _ensure_groups(kernel, tenants):
    for tenant in tenants:
        if not kernel.groups.has(tenant["name"]):
            kernel.groups.create(
                tenant["name"],
                weight=tenant.get("weight", 1024),
                quota_ns=tenant.get("quota_ns", 0),
                period_ns=tenant.get("period_ns", 0),
                policy=tenant.get("policy"),
            )


def run_multitenant(kernel, policy, duration_ns=msecs(200), tenants=None,
                    slice_ns=500_000, drain=True):
    """Run the noisy-neighbour episode on an already-configured kernel.

    Each tenant's groups are created on demand (specs that declare the
    groups themselves — e.g. with per-group policies — win).  Every task
    is an open-loop spinner burning ``slice_ns`` chunks until the clock
    passes ``duration_ns``, so demand always exceeds supply and the
    hierarchy alone decides the split.  Metrics are sampled at the
    horizon, *before* the drain, so shares add up to machine capacity.
    """
    tenants = tuple(tenants) if tenants is not None else DEFAULT_TENANTS
    _ensure_groups(kernel, tenants)
    horizon = kernel.now + duration_ns

    def spinner():
        def prog():
            while kernel.now < horizon:
                yield Run(slice_ns)
        return prog

    spawned = {}
    for tenant in tenants:
        name = tenant["name"]
        group = kernel.groups.group(name)
        tenant_policy = group.policy if group.policy is not None else policy
        spawned[name] = [
            kernel.spawn(spinner(), name=f"{name}-{i}",
                         policy=tenant_policy, group=name,
                         nice=tenant.get("nice", 0))
            for i in range(tenant.get("tasks", 2))
        ]

    kernel.run_until(horizon)

    result = MultitenantResult(
        duration_ns=duration_ns,
        capacity_ns=kernel.topology.nr_cpus * duration_ns,
    )
    for tenant in tenants:
        name = tenant["name"]
        group = kernel.groups.group(name)
        result.tenants[name] = {
            "weight": group.weight,
            "quota_ns": group.quota_ns or 0,
            "period_ns": group.period_ns,
            "tasks": len(spawned[name]),
            "runtime_ns": group.total_runtime_ns,
            "throttle_count": group.throttle_count,
            "throttled_ns": group.throttled_ns,
            "periods": group.periods,
            "max_period_consumed_ns": group.max_period_consumed_ns,
        }

    if drain:
        # Spinners observe the horizon at their next slice boundary and
        # exit; throttled stragglers need their next refill to run.  A
        # clean drain doubles as a liveness check on the throttle path.
        kernel.run_until_idle()
        result.completed = all(
            task.state.value == "dead"
            for tasks in spawned.values() for task in tasks)
    return result
