"""The Table 5 application suite: 36 NAS/Phoronix-like profiles.

The paper compares CFS and the Enoki WFQ scheduler across 9 NAS Parallel
Benchmarks and 27 Phoronix Multicore workloads, finding a geometric-mean
difference of 0.74 % with a worst case of 8.57 % (Cassandra writes and
Zstd level-3 long-mode were the balancing-sensitive outliers).

We cannot run the real applications on a simulated kernel, so each entry
is a *profile*: a synthetic multithreaded structure chosen to exercise the
same scheduling behaviours the real application does —

* ``barrier``   — SPMD compute with per-phase imbalance (the NAS codes,
  OIDN, ASKAP, Rodinia, OneDNN): one thread per core, fork-join phases;
* ``embarrass`` — independent throughput workers (Cpuminer, Arrayfire);
* ``forkjoin``  — many more tasks than cores per generation
  (GraphicsMagick, AVIFEnc): placement and stealing quality matter;
* ``pipeline``  — stage-to-stage wakeup chains (Ffmpeg, Libgav1, Zstd
  long-mode chains): wakeup placement matters;
* ``server``    — request/response with sleeps and bursts (Cassandra):
  the most balancing-sensitive shape, matching the paper's outliers.

Scores are work units per second (or seconds, for time-metric entries),
so the CFS-vs-WFQ *ratio* is meaningful even though absolute values are
synthetic.  Per-profile RNG seeds make runs deterministic.
"""

import random
from dataclasses import dataclass

from repro.simkernel.clock import usecs
from repro.simkernel.futex import Futex
from repro.simkernel.program import (
    FutexWait,
    FutexWake,
    PipeRead,
    PipeWrite,
    Run,
    SemDown,
    SemUp,
    Sleep,
)
from repro.simkernel.pipe import Pipe
from repro.simkernel.semaphore import Semaphore


@dataclass(frozen=True)
class AppProfile:
    name: str
    suite: str              # "nas" | "phoronix"
    pattern: str            # barrier | embarrass | forkjoin | pipeline | server
    unit: str
    higher_is_better: bool
    threads: int            # relative to machine size where <=0
    phases: int
    work_ns: int            # per-thread, per-phase
    jitter: float           # per-phase imbalance factor
    scale: float = 1.0      # converts rate to the reported unit


@dataclass
class AppResult:
    profile: AppProfile
    elapsed_ns: int
    score: float


def _threads(profile, nr_cpus):
    if profile.threads <= 0:
        return nr_cpus * max(1, -profile.threads)
    return profile.threads


def run_app(kernel, policy, profile, seed=None):
    """Run one profile to completion; returns its score."""
    rng = random.Random((seed if seed is not None else kernel.config.seed)
                        ^ hash(profile.name) & 0xFFFFFFFF)
    nr_cpus = kernel.topology.nr_cpus
    nthreads = _threads(profile, nr_cpus)
    start = kernel.now
    runner = _PATTERNS[profile.pattern]
    pids = runner(kernel, policy, profile, nthreads, rng)
    kernel.run_until_idle()
    elapsed = max(1, kernel.now - start)
    total_work = nthreads * profile.phases * profile.work_ns
    if profile.higher_is_better:
        score = (total_work / elapsed) * profile.scale
    else:
        score = (elapsed / 1e9) * profile.scale
    return AppResult(profile=profile, elapsed_ns=elapsed, score=score)


# ---------------------------------------------------------------------------
# patterns
# ---------------------------------------------------------------------------

def _barrier(kernel, policy, profile, nthreads, rng):
    """SPMD: all threads compute a jittered chunk, then synchronise.

    The barrier is master-collected: workers post arrival semaphores and
    sleep on a release futex; the master releases everyone when the phase
    completes — the same wake-storm shape a pthread barrier produces.
    """
    jitters = [
        [rng.uniform(1 - profile.jitter, 1 + profile.jitter)
         for _ in range(nthreads)]
        for _ in range(profile.phases)
    ]
    release_futexes = [Futex() for _ in range(profile.phases)]
    arrive = [Semaphore(0) for _ in range(profile.phases)]

    def worker(index):
        def prog():
            for phase in range(profile.phases):
                yield Run(int(profile.work_ns * jitters[phase][index]))
                yield SemUp(arrive[phase])
                yield FutexWait(release_futexes[phase],
                                expected=0)
        return prog

    def master():
        for phase in range(profile.phases):
            yield Run(int(profile.work_ns * jitters[phase][0]))
            for _ in range(nthreads - 1):
                yield SemDown(arrive[phase])
            yield FutexWake(release_futexes[phase], nthreads,
                            new_value=1)

    pids = [kernel.spawn(master, name=f"{profile.name}-t0",
                         policy=policy).pid]
    for index in range(1, nthreads):
        pids.append(kernel.spawn(worker(index),
                                 name=f"{profile.name}-t{index}",
                                 policy=policy).pid)
    return pids


def _embarrass(kernel, policy, profile, nthreads, rng):
    """Independent workers, no synchronisation (miners, BLAS)."""
    pids = []
    for index in range(nthreads):
        jitter = rng.uniform(1 - profile.jitter, 1 + profile.jitter)

        def prog(j=jitter):
            def inner():
                for _ in range(profile.phases):
                    yield Run(int(profile.work_ns * j))
            return inner

        pids.append(kernel.spawn(prog(), name=f"{profile.name}-t{index}",
                                 policy=policy).pid)
    return pids


def _forkjoin(kernel, policy, profile, nthreads, rng):
    """Generations of short tasks, each generation oversubscribed."""
    done_sem = Semaphore(0)
    tasks_per_gen = nthreads

    def item(duration):
        def prog():
            yield Run(duration)
            yield SemUp(done_sem)
        return prog

    def coordinator():
        for _phase in range(profile.phases):
            durations = [
                int(profile.work_ns
                    * rng.uniform(1 - profile.jitter, 1 + profile.jitter))
                for _ in range(tasks_per_gen)
            ]
            from repro.simkernel.program import Spawn
            for duration in durations:
                yield Spawn(item(duration))
            for _ in range(tasks_per_gen):
                yield SemDown(done_sem)

    return [kernel.spawn(coordinator, name=f"{profile.name}-coord",
                         policy=policy).pid]


def _pipeline(kernel, policy, profile, nthreads, rng):
    """A chain of stages passing items through pipes (codec-style)."""
    stages = max(2, nthreads)
    items = profile.phases
    pipes = [Pipe(f"{profile.name}-p{i}") for i in range(stages + 1)]
    stage_work = [
        int(profile.work_ns
            * rng.uniform(1 - profile.jitter, 1 + profile.jitter))
        for _ in range(stages)
    ]

    def source():
        for item_index in range(items):
            yield PipeWrite(pipes[0], item_index)

    def stage(index):
        def prog():
            for _ in range(items):
                yield PipeRead(pipes[index])
                yield Run(stage_work[index])
                yield PipeWrite(pipes[index + 1], 1)
        return prog

    def sink():
        for _ in range(items):
            yield PipeRead(pipes[stages])

    pids = [kernel.spawn(source, name=f"{profile.name}-src",
                         policy=policy).pid]
    for index in range(stages):
        pids.append(kernel.spawn(stage(index),
                                 name=f"{profile.name}-s{index}",
                                 policy=policy).pid)
    pids.append(kernel.spawn(sink, name=f"{profile.name}-sink",
                             policy=policy).pid)
    return pids


def _server(kernel, policy, profile, nthreads, rng):
    """Bursty request/response with sleeps (Cassandra-like writes)."""
    queue_sem = Semaphore(0)
    burst = max(2, nthreads // 2)

    def worker():
        def prog():
            for _ in range(profile.phases):
                yield SemDown(queue_sem)
                yield Run(int(profile.work_ns
                              * rng.uniform(1 - profile.jitter,
                                            1 + profile.jitter)))
        return prog

    def driver():
        total = profile.phases * nthreads
        issued = 0
        while issued < total:
            for _ in range(min(burst, total - issued)):
                yield SemUp(queue_sem)
                issued += 1
            yield Sleep(int(profile.work_ns // 2))

    pids = [kernel.spawn(driver, name=f"{profile.name}-driver",
                         policy=policy).pid]
    for index in range(nthreads):
        pids.append(kernel.spawn(worker(), name=f"{profile.name}-w{index}",
                                 policy=policy).pid)
    return pids


_PATTERNS = {
    "barrier": _barrier,
    "embarrass": _embarrass,
    "forkjoin": _forkjoin,
    "pipeline": _pipeline,
    "server": _server,
}


# ---------------------------------------------------------------------------
# the 36 Table 5 profiles
# ---------------------------------------------------------------------------

def _p(name, suite, pattern, unit, hib, threads, phases, work_us, jitter,
       scale=1.0):
    return AppProfile(name=name, suite=suite, pattern=pattern, unit=unit,
                      higher_is_better=hib, threads=threads, phases=phases,
                      work_ns=usecs(work_us), jitter=jitter, scale=scale)


NAS_PROFILES = [
    _p("BT", "nas", "barrier", "Mops/s", True, 0, 24, 700, 0.02, 26000),
    _p("CG", "nas", "barrier", "Mops/s", True, 0, 40, 220, 0.08, 4500),
    _p("EP", "nas", "embarrass", "Mops/s", True, 0, 10, 1600, 0.01, 490),
    _p("FT", "nas", "barrier", "Mops/s", True, 0, 20, 800, 0.03, 14800),
    _p("IS", "nas", "barrier", "Mops/s", True, 0, 30, 180, 0.10, 1290),
    _p("LU", "nas", "barrier", "Mops/s", True, 0, 48, 420, 0.05, 30000),
    _p("MG", "nas", "barrier", "Mops/s", True, 0, 24, 520, 0.04, 8600),
    _p("SP", "nas", "barrier", "Mops/s", True, 0, 36, 460, 0.03, 11800),
    _p("UA", "nas", "barrier", "Mops/s", True, 0, 30, 380, 0.09, 74),
]

PHORONIX_PROFILES = [
    _p("Arrayfire, 1", "phoronix", "embarrass", "GFLOPS", True, 0, 12,
       900, 0.02, 810),
    _p("Arrayfire, 2", "phoronix", "barrier", "ms", False, 0, 16, 300,
       0.04, 2.8),
    _p("Cassandra, 1", "phoronix", "server", "Op/s", True, -2, 28, 140,
       0.30, 52000),
    _p("ASKAP, 4", "phoronix", "barrier", "Iter/s", True, 0, 24, 420,
       0.05, 160),
    _p("Cpuminer, 2", "phoronix", "embarrass", "kH/s", True, 0, 14, 760,
       0.01, 51000),
    _p("Cpuminer, 3", "phoronix", "embarrass", "kH/s", True, 0, 14, 820,
       0.01, 35500),
    _p("Cpuminer, 4", "phoronix", "embarrass", "kH/s", True, 0, 12, 880,
       0.01, 9500),
    _p("Cpuminer, 6", "phoronix", "embarrass", "kH/s", True, 0, 16, 700,
       0.01, 260000),
    _p("Cpuminer, 11", "phoronix", "embarrass", "kH/s", True, 0, 14, 800,
       0.01, 29400),
    _p("Ffmpeg, 1, 1", "phoronix", "pipeline", "s", False, 6, 160, 110,
       0.12, 24.0),
    _p("Graphics-Magick, 4", "phoronix", "forkjoin", "Iter/m", True, -2,
       10, 320, 0.15, 780),
    _p("OIDN, 1", "phoronix", "barrier", "Images/s", True, 0, 12, 1100,
       0.03, 0.31),
    _p("OIDN, 2", "phoronix", "barrier", "Images/s", True, 0, 12, 1150,
       0.03, 0.31),
    _p("OIDN, 3", "phoronix", "barrier", "Images/s", True, 0, 18, 1300,
       0.02, 0.15),
    _p("Rodina, 3", "phoronix", "barrier", "s", False, 0, 30, 600, 0.06,
       160.0),
    _p("Zstd, 2", "phoronix", "pipeline", "MB/s", True, 5, 220, 120, 0.25,
       850),
    _p("Zstd, 4", "phoronix", "pipeline", "MB/s", True, 5, 260, 160, 0.25,
       155),
    _p("AVIFEnc, 4", "phoronix", "forkjoin", "s", False, -2, 12, 380,
       0.12, 15.0),
    _p("Libgav1, 1", "phoronix", "pipeline", "FPS", True, 4, 200, 90,
       0.10, 263),
    _p("Libgav1, 2", "phoronix", "pipeline", "FPS", True, 4, 160, 210,
       0.10, 67),
    _p("Libgav1, 3", "phoronix", "pipeline", "FPS", True, 4, 200, 100,
       0.10, 222),
    _p("Libgav1, 4", "phoronix", "pipeline", "FPS", True, 4, 160, 220,
       0.10, 64),
    _p("OneDNN, 4, 1", "phoronix", "barrier", "ms", False, 0, 20, 140,
       0.05, 4.2),
    _p("OneDNN, 5, 1", "phoronix", "barrier", "ms", False, 0, 24, 180,
       0.06, 9.4),
    _p("OneDNN, 7, 1", "phoronix", "barrier", "ms", False, 0, 30, 900,
       0.02, 4165),
    _p("OneDNN, 7, 2", "phoronix", "barrier", "ms", False, 0, 30, 910,
       0.02, 4163),
    _p("OneDNN, 7, 3", "phoronix", "barrier", "ms", False, 0, 30, 905,
       0.02, 4163),
]

ALL_PROFILES = NAS_PROFILES + PHORONIX_PROFILES


def compare_profiles(make_kernel_cfs, make_kernel_wfq, profiles=None,
                     seed=None):
    """Run every profile under both schedulers; returns comparison rows.

    ``make_kernel_*`` build a fresh kernel per run (state isolation) and
    return ``(kernel, policy)``.
    """
    rows = []
    for profile in (profiles if profiles is not None else ALL_PROFILES):
        kernel_cfs, policy_cfs = make_kernel_cfs()
        cfs = run_app(kernel_cfs, policy_cfs, profile, seed=seed)
        kernel_wfq, policy_wfq = make_kernel_wfq()
        wfq = run_app(kernel_wfq, policy_wfq, profile, seed=seed)
        if profile.higher_is_better:
            slowdown_pct = (cfs.score - wfq.score) / cfs.score * 100.0
        else:
            slowdown_pct = (wfq.score - cfs.score) / cfs.score * 100.0
        rows.append({
            "profile": profile,
            "cfs": cfs.score,
            "wfq": wfq.score,
            "slowdown_pct": slowdown_pct,
        })
    return rows
