"""The appendix A.1 functional-equivalence benchmarks.

Three experiments verifying that the Enoki WFQ scheduler implements the
*behaviour* of a weighted-fair-queuing scheduler, compared against CFS:

* **fair sharing** — five CPU-bound tasks: spread across cores they finish
  together; forced onto one core they take ~5x as long, still together;
* **weighting** — the same five tasks with one at minimum priority: the
  four nice-0 tasks finish together, the nice-19 task trails;
* **placement** — one task per core: each keeps its core; forcing one
  task to move mid-run leaves completion times intact, with the paper
  noting a higher runtime standard deviation for WFQ's simpler balancer.
"""

from dataclasses import dataclass, field

from repro.analysis.stats import mean, stddev
from repro.simkernel.clock import msecs
from repro.simkernel.program import Run, SetAffinity


@dataclass
class FairnessResult:
    finish_times_ns: dict = field(default_factory=dict)   # name -> ns
    runtimes_ns: dict = field(default_factory=dict)

    def spread_ns(self, names=None):
        values = [v for k, v in self.finish_times_ns.items()
                  if names is None or k in names]
        return max(values) - min(values)

    def runtime_stddev_ns(self):
        return stddev(list(self.runtimes_ns.values()))

    def runtime_mean_ns(self):
        return mean(list(self.runtimes_ns.values()))


def run_fair_share(kernel, policy, tasks=5, work_ns=msecs(400),
                   one_core=False):
    """Five CPU hogs, spread (default) or co-located on CPU 0."""
    affinity = frozenset({0}) if one_core else None
    result = FairnessResult()
    spawned = []

    def spinner():
        yield Run(work_ns)

    for i in range(tasks):
        spawned.append(kernel.spawn(
            spinner, name=f"fair-{i}", policy=policy,
            allowed_cpus=affinity,
        ))
    kernel.run_until_idle()
    for task in spawned:
        result.finish_times_ns[task.name] = task.stats.finished_ns
        result.runtimes_ns[task.name] = task.sum_exec_runtime_ns
    return result


def run_weighted_share(kernel, policy, tasks=5, work_ns=msecs(400)):
    """Co-located hogs with one at minimum priority (nice 19)."""
    result = FairnessResult()
    spawned = []

    def spinner():
        yield Run(work_ns)

    for i in range(tasks):
        nice = 19 if i == tasks - 1 else 0
        spawned.append(kernel.spawn(
            spinner, name=f"weighted-{i}", policy=policy, nice=nice,
            allowed_cpus=frozenset({0}),
        ))
    kernel.run_until_idle()
    for task in spawned:
        result.finish_times_ns[task.name] = task.stats.finished_ns
        result.runtimes_ns[task.name] = task.sum_exec_runtime_ns
    return result


def run_placement(kernel, policy, work_ns=msecs(300), move_one=False):
    """One task per core; optionally force one to change cores mid-run."""
    nr = kernel.topology.nr_cpus
    result = FairnessResult()
    spawned = []

    def spinner():
        yield Run(work_ns)

    def mover():
        yield Run(work_ns // 2)
        yield SetAffinity(frozenset({(nr - 1) // 2}))
        yield Run(work_ns - work_ns // 2)

    for cpu in range(nr):
        if move_one and cpu == 0:
            task = kernel.spawn(mover, name="placed-0", policy=policy,
                                origin_cpu=cpu)
        else:
            task = kernel.spawn(spinner, name=f"placed-{cpu}",
                                policy=policy, origin_cpu=cpu)
        spawned.append(task)
    kernel.run_until_idle()
    for task in spawned:
        result.finish_times_ns[task.name] = task.stats.finished_ns
        result.runtimes_ns[task.name] = (
            task.stats.finished_ns - task.stats.created_ns
        )
    return result
