"""hackbench: the classic scheduler stress test.

The paper's artifact appendix notes its perf pipe benchmark "was
previously known as Hackbench".  This is the full groups form: each group
has N senders and N receivers connected all-to-all through pipes; every
sender sends M messages to every receiver in its group.  The metric is
the wall time to drain everything — a pure scheduler-throughput stress
(thousands of short wake/block cycles in flight at once).
"""

from dataclasses import dataclass

from repro.simkernel.pipe import Pipe
from repro.simkernel.program import PipeRead, PipeWrite
from repro.simkernel.task import TaskState


@dataclass
class HackbenchResult:
    groups: int
    fds: int
    loops: int
    elapsed_ns: int
    total_messages: int

    @property
    def elapsed_ms(self):
        return self.elapsed_ns / 1e6

    @property
    def messages_per_second(self):
        if self.elapsed_ns == 0:
            return 0.0
        return self.total_messages / (self.elapsed_ns / 1e9)


def run_hackbench(kernel, policy, groups=2, fds=4, loops=20,
                  scheduler_name=""):
    """Run hackbench on a configured kernel.

    ``groups`` groups of ``fds`` senders + ``fds`` receivers; every sender
    sends ``loops`` messages to *each* receiver in its group, so total
    messages = groups * fds * fds * loops.
    """
    start = kernel.now
    all_pids = []

    for group in range(groups):
        pipes = [Pipe(f"hb-{group}-{i}") for i in range(fds)]

        def sender(group_pipes):
            def prog():
                for _ in range(loops):
                    for pipe in group_pipes:
                        yield PipeWrite(pipe, b"m")
            return prog

        def receiver(pipe, expected):
            def prog():
                for _ in range(expected):
                    yield PipeRead(pipe)
            return prog

        for index in range(fds):
            task = kernel.spawn(sender(pipes),
                                name=f"hb-s{group}.{index}",
                                policy=policy)
            all_pids.append(task.pid)
        for index in range(fds):
            task = kernel.spawn(receiver(pipes[index], loops * fds),
                                name=f"hb-r{group}.{index}",
                                policy=policy)
            all_pids.append(task.pid)

    kernel.run_until_idle()
    unfinished = [pid for pid in all_pids
                  if kernel.tasks[pid].state is not TaskState.DEAD]
    if unfinished:
        raise RuntimeError(f"hackbench hung: pids {unfinished}")
    return HackbenchResult(
        groups=groups, fds=fds, loops=loops,
        elapsed_ns=kernel.now - start,
        total_messages=groups * fds * fds * loops,
    )
