"""Trace-driven serverless/FaaS workload (the ROADMAP's "millions of
users, heavy traffic" scenario made concrete).

The sampler synthesises an Azure-Functions-style invocation trace from a
single seed:

* **popularity** — functions are ranked by a Zipf law (``weight =
  rank**-zipf_s``), so a handful of hot functions dominate the stream
  while a long tail of cold ones still shows up;
* **durations** — each function draws service times from its own
  lognormal; functions split bimodally into *short* handlers (hundreds
  of microseconds) and *long* jobs (tens of milliseconds) assigned to
  the least-popular ranks, so long invocations are rare but heavy —
  exactly the mix that ruins tail latency under a fairness scheduler;
* **interarrivals** — an open-loop Poisson process, optionally modulated
  by deterministic burst windows (``burst_every_ns``/``burst_len_ns``
  multiply the rate by ``burst_factor``), standing in for the diurnal
  and flash-crowd phases of the real traces.

:class:`FaasSampler` is pure (no kernel): property tests sample traces
directly.  :func:`run_faas` drives the same sampler open-loop through a
live kernel using a warm/cold container pool — invocations land on warm
workers when one is free, otherwise a new worker is spawned (a *cold
start*, charged ``cold_start_us`` extra service) up to ``max_workers``,
after which invocations queue.  Workers can declare the invocation's
expected duration through the Enoki hint ring (``hint_fraction``), which
is the fast path the serverless scheduler consumes.
"""

import random
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.simkernel.clock import msecs, usecs
from repro.simkernel.program import Call, Run, SemDown, SendHint
from repro.simkernel.semaphore import Semaphore
from repro.workloads.rocksdb import host_sem_up


@dataclass(frozen=True)
class FunctionProfile:
    """One deployed function: popularity rank + duration distribution."""

    func_id: int
    weight: float       # unnormalised Zipf popularity
    median_ns: int      # lognormal median service time
    sigma: float        # lognormal shape
    is_long: bool


@dataclass
class Invocation:
    arrival_ns: int
    func_id: int
    service_ns: int
    is_long: bool
    cold: bool = False
    hinted: bool = False
    completed_ns: int = -1


class FaasSampler:
    """Seeded Azure-trace-style invocation sampler (pure, no kernel).

    The same seed always produces the same trace; the executor and the
    property tests share one sampling order (gap, then function, then
    service draw per invocation).
    """

    def __init__(self, seed, offered_rps=20_000.0, functions=64,
                 zipf_s=1.1, long_function_fraction=0.125,
                 short_service_us=150.0, short_sigma=0.6,
                 long_service_ms=10.0, long_sigma=0.3,
                 burst_factor=1.0, burst_every_ns=0, burst_len_ns=0):
        if functions < 1:
            raise ValueError("need at least one function")
        if offered_rps <= 0:
            raise ValueError("offered_rps must be positive")
        self.seed = seed
        self.offered_rps = float(offered_rps)
        self.burst_factor = float(burst_factor)
        self.burst_every_ns = int(burst_every_ns)
        self.burst_len_ns = int(burst_len_ns)
        self.rng = random.Random(seed)
        profile_rng = random.Random(f"{seed}:faas-profiles")
        n_long = (max(1, round(functions * long_function_fraction))
                  if long_function_fraction > 0 else 0)
        self.profiles = []
        for rank in range(1, functions + 1):
            is_long = rank > functions - n_long
            base_ns = (msecs(1) * long_service_ms if is_long
                       else usecs(1) * short_service_us)
            # Per-function spread around the class base, so functions
            # are individually distinguishable in the trace.
            median_ns = max(1_000,
                            int(base_ns
                                * profile_rng.lognormvariate(0.0, 0.25)))
            self.profiles.append(FunctionProfile(
                func_id=rank - 1,
                weight=rank ** -zipf_s,
                median_ns=median_ns,
                sigma=long_sigma if is_long else short_sigma,
                is_long=is_long,
            ))
        self._cum_weights = []
        total = 0.0
        for profile in self.profiles:
            total += profile.weight
            self._cum_weights.append(total)
        self.total_weight = total

    @property
    def long_weight_share(self):
        """Fraction of invocations expected to hit a long function."""
        return sum(p.weight for p in self.profiles if p.is_long) \
            / self.total_weight

    def rate_at(self, now_ns):
        """Offered load (requests/s) at virtual instant ``now_ns``."""
        rate = self.offered_rps
        if (self.burst_every_ns > 0 and self.burst_len_ns > 0
                and now_ns % self.burst_every_ns < self.burst_len_ns):
            rate *= self.burst_factor
        return rate

    def sample_gap_ns(self, now_ns):
        interarrival_ns = 1e9 / self.rate_at(now_ns)
        return max(1, int(self.rng.expovariate(1.0 / interarrival_ns)))

    def sample_function(self):
        point = self.rng.random() * self.total_weight
        return self.profiles[min(bisect_right(self._cum_weights, point),
                                 len(self.profiles) - 1)]

    def sample_service_ns(self, profile):
        return max(1_000, int(profile.median_ns
                              * self.rng.lognormvariate(0.0, profile.sigma)))

    def sample(self, now_ns):
        """One invocation: returns ``(gap_ns, profile, service_ns)``."""
        gap = self.sample_gap_ns(now_ns)
        profile = self.sample_function()
        return gap, profile, self.sample_service_ns(profile)

    def generate(self, count, start_ns=0):
        """A pure trace of ``count`` invocations:
        ``[(arrival_ns, func_id, service_ns, is_long), ...]``."""
        trace, now = [], start_ns
        for _ in range(count):
            gap, profile, service_ns = self.sample(now)
            now += gap
            trace.append((now, profile.func_id, service_ns,
                          profile.is_long))
        return trace


@dataclass
class FaasResult:
    """Invocation latency/throughput summary for one FaaS episode."""

    offered_rps: float
    scheduler: str = ""
    offered: int = 0            # invocations arriving in the window
    completed: int = 0          # of those, how many finished
    total_invocations: int = 0  # full episode, warmup included
    cold_starts: int = 0
    warm_pool: int = 0          # workers alive at the end
    measured_ns: int = 0
    short_latencies_ns: list = field(default_factory=list)
    long_latencies_ns: list = field(default_factory=list)

    def _pct_us(self, samples, pct):
        if not samples:
            return float("nan")
        return percentile(samples, pct) / 1e3

    @property
    def p50_us(self):
        return self._pct_us(self.short_latencies_ns, 50)

    @property
    def p99_us(self):
        return self._pct_us(self.short_latencies_ns, 99)

    @property
    def p999_us(self):
        return self._pct_us(self.short_latencies_ns, 99.9)

    @property
    def long_p99_us(self):
        return self._pct_us(self.long_latencies_ns, 99)

    @property
    def throughput_rps(self):
        if self.measured_ns <= 0:
            return 0.0
        return self.completed / (self.measured_ns / 1e9)


def run_faas(kernel, policy, offered_rps=20_000, duration_ns=msecs(400),
             warmup_ns=msecs(50), max_workers=64, prewarm=0,
             worker_cpus=None, cold_start_us=250.0, hint_fraction=0.0,
             seed=None, scheduler_name="", nice=0, **sampler_options):
    """Drive the FaaS trace open-loop and collect invocation latencies.

    The kernel must already have the scheduler under test registered as
    ``policy``.  Latency is measured arrival-to-completion (queueing +
    cold start + service), the number a function caller experiences.
    Extra keyword arguments parameterise the :class:`FaasSampler`.
    """
    seed = seed if seed is not None else kernel.config.seed
    sampler = FaasSampler(seed, offered_rps=offered_rps, **sampler_options)
    ctl_rng = random.Random(f"{seed}:faas-ctl")
    cold_start_ns = int(usecs(1) * cold_start_us)
    affinity = frozenset(worker_cpus) if worker_cpus is not None else None
    cpu_list = (sorted(affinity) if affinity is not None
                else list(range(kernel.topology.nr_cpus)))

    queue = deque()
    sem = Semaphore(0, name="faas-q")
    end_at = kernel.now + warmup_ns + duration_ns
    measure_from = kernel.now + warmup_ns
    result = FaasResult(offered_rps=offered_rps, scheduler=scheduler_name,
                        measured_ns=duration_ns)
    pool = {"warm": 0, "outstanding": 0, "drained": False}

    def record(inv):
        inv.completed_ns = kernel.now
        pool["outstanding"] -= 1
        if inv.arrival_ns < measure_from:
            return
        result.completed += 1
        latency = inv.completed_ns - inv.arrival_ns
        if inv.is_long:
            result.long_latencies_ns.append(latency)
        else:
            result.short_latencies_ns.append(latency)

    def make_worker(first):
        def worker():
            pending = first
            while True:
                if pending is None:
                    yield SemDown(sem)
                    pending = queue.popleft()
                    if pending is None:        # drain poison pill
                        return
                inv, pending = pending, None
                if inv.hinted and policy != 0:
                    yield SendHint({"expected_ns": inv.service_ns},
                                   policy=policy)
                yield Run(inv.service_ns
                          + (cold_start_ns if inv.cold else 0))
                yield Call(record, (inv,))
        return worker

    def spawn_worker(first=None):
        index = pool["warm"]
        pool["warm"] += 1
        result.warm_pool = pool["warm"]
        kernel.spawn(make_worker(first), name=f"faas-w{index}",
                     policy=policy, allowed_cpus=affinity, nice=nice,
                     origin_cpu=cpu_list[index % len(cpu_list)])

    for _ in range(prewarm):
        # Pre-warmed containers park on the queue semaphore immediately.
        spawn_worker(None)

    def arrival():
        if kernel.now >= end_at:
            pool["drained"] = True
            for _ in range(pool["warm"]):
                queue.append(None)
                host_sem_up(kernel, sem)
            return
        gap, profile, service_ns = sampler.sample(kernel.now)
        inv = Invocation(arrival_ns=kernel.now, func_id=profile.func_id,
                         service_ns=service_ns, is_long=profile.is_long,
                         hinted=ctl_rng.random() < hint_fraction)
        result.total_invocations += 1
        if inv.arrival_ns >= measure_from:
            result.offered += 1
        pool["outstanding"] += 1
        if (pool["outstanding"] > pool["warm"]
                and pool["warm"] < max_workers):
            # No warm container free: scale up.  The fresh worker takes
            # this invocation directly and pays the cold-start penalty.
            inv.cold = True
            if inv.arrival_ns >= measure_from:
                result.cold_starts += 1
            spawn_worker(inv)
        else:
            queue.append(inv)
            host_sem_up(kernel, sem)
        kernel.events.after(gap, arrival)

    kernel.events.after(1, arrival)
    kernel.run_until_idle()
    return result
