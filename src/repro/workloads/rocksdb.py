"""The RocksDB-style dispersed-load benchmark (paper section 5.4, Fig 2).

    "These benchmarks send queries to an in-memory RocksDB database, with
    99.5% GET requests and 0.5% range queries.  Replicating how this
    benchmark was run in ghOSt, each GET is assigned to take 4 us and each
    range query to take 10 ms.  ...  Three cores were reserved, one for
    background tasks, one for the load generator, and one for the
    scheduler if required.  The load generator passes tasks to a total of
    50 workers running on the other five cores."

The load generator is an open-loop Poisson source; requests land in a
shared queue served by 50 worker tasks pinned to the five worker cores.
Each request spins for its assigned service time (as the original
benchmark does when RocksDB answers too fast).  The figure metric is the
99th-percentile latency of the *short* (GET) requests.
"""

import random
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.simkernel.clock import msecs, usecs
from repro.simkernel.program import Call, Run, SemDown
from repro.simkernel.semaphore import Semaphore

GET_SERVICE_NS = usecs(4)
RANGE_SERVICE_NS = msecs(10)
RANGE_FRACTION = 0.005


@dataclass
class Request:
    arrival_ns: int
    service_ns: int
    is_range: bool
    completed_ns: int = -1


@dataclass
class RocksDbResult:
    offered_rps: float
    completed: int = 0
    offered: int = 0
    get_latencies_us: list = field(default_factory=list)
    scheduler: str = ""

    @property
    def p99_us(self):
        if not self.get_latencies_us:
            return float("nan")
        return percentile(self.get_latencies_us, 99)

    @property
    def p50_us(self):
        if not self.get_latencies_us:
            return float("nan")
        return percentile(self.get_latencies_us, 50)


def host_sem_up(kernel, sem):
    """Release a semaphore from host (event) context, waking a waiter."""
    waiter = sem.up()
    if waiter is not None:
        waiter.pending_result = None
        kernel.wake_task(waiter)


def run_rocksdb(kernel, policy, offered_rps, duration_ns=msecs(400),
                warmup_ns=msecs(50), workers=50, worker_cpus=(3, 4, 5, 6, 7),
                seed=None, scheduler_name="", nice=0, on_drain=None):
    """Run the dispersed-load server and collect GET tail latencies.

    The kernel must already have the scheduler under test registered as
    ``policy``; a CFS class must exist for any co-located batch work.
    """
    rng = random.Random(seed if seed is not None else kernel.config.seed)
    queue = deque()
    sem = Semaphore(0, name="rocksdb-q")
    end_at = kernel.now + warmup_ns + duration_ns
    measure_from = kernel.now + warmup_ns
    result = RocksDbResult(offered_rps=offered_rps,
                           scheduler=scheduler_name)
    affinity = frozenset(worker_cpus)

    def record(request):
        request.completed_ns = kernel.now
        if request.arrival_ns >= measure_from and not request.is_range:
            latency_us = (request.completed_ns - request.arrival_ns) / 1e3
            result.get_latencies_us.append(latency_us)
        if request.arrival_ns >= measure_from:
            result.completed += 1

    def worker():
        while True:
            yield SemDown(sem)
            request = queue.popleft()
            if request is None:
                return
            yield Run(request.service_ns)
            yield Call(record, (request,))

    worker_tasks = [
        kernel.spawn(worker, name=f"rocksdb-w{i}", policy=policy,
                     allowed_cpus=affinity, nice=nice,
                     origin_cpu=worker_cpus[i % len(worker_cpus)])
        for i in range(workers)
    ]

    interarrival_ns = 1e9 / offered_rps

    def arrival():
        if kernel.now >= end_at:
            # Drain: poison-pill every worker so the run terminates.
            for _ in worker_tasks:
                queue.append(None)
                host_sem_up(kernel, sem)
            if on_drain is not None:
                on_drain()
            return
        is_range = rng.random() < RANGE_FRACTION
        service = RANGE_SERVICE_NS if is_range else GET_SERVICE_NS
        request = Request(arrival_ns=kernel.now, service_ns=service,
                          is_range=is_range)
        if request.arrival_ns >= measure_from:
            result.offered += 1
        queue.append(request)
        host_sem_up(kernel, sem)
        kernel.events.after(
            max(1, int(rng.expovariate(1.0 / interarrival_ns))), arrival
        )

    kernel.events.after(1, arrival)
    kernel.run_until_idle()
    return result
