"""The memcached/mutilate-style workload (paper section 5.6, Figure 3).

    "We use the Mutilate benchmark utility to generate load for the
    memcached server, using the key size and distribution, value size and
    distribution, and inter-arrival distribution of the Facebook ETC
    workload, 1 million records, and 3% updates."

Model: an open-loop Poisson client stream; request service times follow an
ETC-like long-tailed distribution (3 % updates are heavier).  Three server
backends, matching the figure's three lines:

* ``run_memcached_threads`` — baseline memcached: a pool of kernel threads
  under CFS, blocking on a request semaphore (all eight cores).
* ``run_memcached_arachne`` — memcached on an Arachne runtime (one user
  thread per request), with either the native userspace arbiter or the
  Enoki core arbiter behind it; scales between 2 and 7 cores.
"""

import random
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.stats import percentile
from repro.arachne_rt.user_thread import URun
from repro.simkernel.clock import msecs, usecs
from repro.simkernel.program import Call, Run, SemDown, SemUp
from repro.simkernel.semaphore import Semaphore
from repro.workloads.rocksdb import host_sem_up

#: mean GET service time (hash lookup + respond)
GET_SERVICE_NS = usecs(18)
#: update fraction and its service time (ETC: ~3% SETs, heavier)
UPDATE_FRACTION = 0.03
UPDATE_SERVICE_NS = usecs(45)
#: kernel TCP receive path (softirq + epoll + recv) per request
NET_RECV_NS = usecs(2)
#: send path per reply
NET_SEND_NS = usecs(1)


@dataclass
class McResult:
    offered_rps: float
    completed: int = 0
    offered: int = 0
    latencies_us: list = field(default_factory=list)
    scheduler: str = ""

    @property
    def p99_us(self):
        if not self.latencies_us:
            return float("nan")
        return percentile(self.latencies_us, 99)

    @property
    def p50_us(self):
        if not self.latencies_us:
            return float("nan")
        return percentile(self.latencies_us, 50)


def _service_ns(rng):
    """ETC-like service time: lognormal body plus heavier updates."""
    if rng.random() < UPDATE_FRACTION:
        base = UPDATE_SERVICE_NS
    else:
        base = GET_SERVICE_NS
    return max(500, int(rng.lognormvariate(0, 0.4) * base))


def _drive(kernel, offered_rps, duration_ns, warmup_ns, deliver, drain,
           result, rng):
    """Shared open-loop arrival engine."""
    end_at = kernel.now + warmup_ns + duration_ns
    measure_from = kernel.now + warmup_ns
    interarrival_ns = 1e9 / offered_rps

    def record(arrival_ns):
        def fn():
            if arrival_ns >= measure_from:
                result.completed += 1
                result.latencies_us.append((kernel.now - arrival_ns) / 1e3)
        return fn

    def arrival():
        if kernel.now >= end_at:
            drain()
            return
        arrival_ns = kernel.now
        if arrival_ns >= measure_from:
            result.offered += 1
        deliver(arrival_ns, _service_ns(rng), record(arrival_ns))
        kernel.events.after(
            max(1, int(rng.expovariate(1.0 / interarrival_ns))), arrival
        )

    kernel.events.after(1, arrival)
    kernel.run_until_idle()
    return result


def run_memcached_threads(kernel, policy, offered_rps,
                          duration_ns=msecs(300), warmup_ns=msecs(50),
                          nthreads=16, cpus=None, seed=None,
                          scheduler_name="cfs"):
    """Baseline memcached: epoll dispatcher + per-connection worker pool.

    Each request takes the kernel path the Arachne runtime short-circuits:
    the network softirq/epoll dispatcher thread wakes up, classifies the
    connection, and wakes that connection's worker thread, which runs the
    request and replies.  Connections are statically spread over the
    worker threads, as memcached does.
    """
    rng = random.Random(seed if seed is not None else kernel.config.seed)
    result = McResult(offered_rps=offered_rps, scheduler=scheduler_name)
    affinity = frozenset(cpus) if cpus is not None else None
    inbox = deque()
    net_sem = Semaphore(0, name="mc-net")
    worker_queues = [deque() for _ in range(nthreads)]
    worker_sems = [Semaphore(0, name=f"mc-w{i}") for i in range(nthreads)]
    next_conn = {"i": 0}

    def net_dispatcher():
        while True:
            yield SemDown(net_sem)
            entry = inbox.popleft()
            if entry is None:
                for i in range(nthreads):
                    worker_queues[i].append(None)
                    yield SemUp(worker_sems[i])
                return
            yield Run(NET_RECV_NS)
            index, service_ns, done = entry
            worker_queues[index].append((service_ns, done))
            yield SemUp(worker_sems[index])

    def worker(index):
        def prog():
            while True:
                yield SemDown(worker_sems[index])
                entry = worker_queues[index].popleft()
                if entry is None:
                    return
                service_ns, done = entry
                yield Run(service_ns + NET_SEND_NS)
                yield Call(done)
        return prog

    kernel.spawn(net_dispatcher, name="mc-net", policy=policy,
                 allowed_cpus=affinity)
    for i in range(nthreads):
        kernel.spawn(worker(i), name=f"mc-{i}", policy=policy,
                     allowed_cpus=affinity)

    def deliver(arrival_ns, service_ns, done):
        index = next_conn["i"] % nthreads
        next_conn["i"] += 1
        inbox.append((index, service_ns, done))
        host_sem_up(kernel, net_sem)

    def drain():
        inbox.append(None)
        host_sem_up(kernel, net_sem)

    return _drive(kernel, offered_rps, duration_ns, warmup_ns, deliver,
                  drain, result, rng)


def run_memcached_arachne(kernel, runtime, offered_rps,
                          duration_ns=msecs(300), warmup_ns=msecs(50),
                          seed=None, scheduler_name="arachne"):
    """memcached on Arachne: one user thread per request."""
    rng = random.Random(seed if seed is not None else kernel.config.seed)
    result = McResult(offered_rps=offered_rps, scheduler=scheduler_name)

    def deliver(arrival_ns, service_ns, done):
        def request_thread():
            # The dispatcher's poll loop does the recv itself; the user
            # thread runs the request and the send path inline.
            yield URun(NET_RECV_NS + service_ns + NET_SEND_NS)

        runtime.submit(request_thread, on_done=lambda _t: done())

    def drain():
        runtime.stop()

    return _drive(kernel, offered_rps, duration_ns, warmup_ns, deliver,
                  drain, result, rng)
