"""Trace exporters: Chrome trace-event JSON (Perfetto) and ftrace text.

The Chrome format (the ``chrome://tracing`` / Perfetto "JSON array"
flavour) renders each CPU as a track: ``dispatch``/``idle`` events are
reconstructed into duration slices showing which task held the CPU, and
every other event in the taxonomy becomes an instant marker on its CPU's
track.  Timestamps are microseconds (the format's unit); durations and
instants stay ordered because the exporter sorts by ``ts`` before
emitting.

The ftrace flavour is a line-per-event text log in the familiar
``comm-pid [cpu] time: event: fields`` shape, convenient for grepping.
"""

import json


def _task_name(task_names, pid):
    if pid is None:
        return "<idle>"
    if task_names and pid in task_names:
        return task_names[pid]
    return f"pid-{pid}"


def _cpu_slices(events):
    """Reconstruct (cpu, pid, start_ns, end_ns, seq) runs from
    dispatch/idle; ``seq`` is the emission index of the opening event."""
    open_slices = {}                    # cpu -> (pid, start_ns, seq)
    slices = []
    last_t = 0
    for seq, event in enumerate(events):
        if event.t_ns > last_t:
            last_t = event.t_ns
        if event.kind == "dispatch":
            previous = open_slices.pop(event.cpu, None)
            if previous is not None:
                slices.append((event.cpu, previous[0], previous[1],
                               event.t_ns, previous[2]))
            open_slices[event.cpu] = (event.pid, event.t_ns, seq)
        elif event.kind == "idle":
            previous = open_slices.pop(event.cpu, None)
            if previous is not None:
                slices.append((event.cpu, previous[0], previous[1],
                               event.t_ns, previous[2]))
    for cpu, (pid, start, seq) in open_slices.items():
        if last_t > start:
            slices.append((cpu, pid, start, last_t, seq))
    return slices


def chrome_trace(events, task_names=None):
    """Build the Chrome trace-event document (a JSON-serialisable dict)."""
    events = list(events)
    ordered = []                        # (ts, seq, trace_event)

    for cpu, pid, start_ns, end_ns, seq in _cpu_slices(events):
        ordered.append((start_ns / 1000.0, seq, {
            "name": _task_name(task_names, pid),
            "cat": "sched",
            "ph": "X",
            "ts": start_ns / 1000.0,
            "dur": (end_ns - start_ns) / 1000.0,
            "pid": 0,
            "tid": cpu,
            "args": {"pid": pid},
        }))

    for seq, event in enumerate(events):
        if event.kind in ("dispatch", "idle"):
            continue
        args = {k: v for k, v in event.args
                if isinstance(v, (int, float, str, bool, type(None)))}
        if event.pid is not None:
            args["pid"] = event.pid
        if event.cost_ns:
            args["cost_ns"] = event.cost_ns
        ordered.append((event.t_ns / 1000.0, seq, {
            "name": event.kind,
            "cat": "obs",
            "ph": "i",
            "ts": event.t_ns / 1000.0,
            "s": "t",
            "pid": 0,
            "tid": event.cpu if event.cpu >= 0 else 0,
            "args": args,
        }))

    # Sort by (ts, emission seq): the sequence tiebreaker pins
    # equal-timestamp events to emission order on every run — sorting by
    # ``ts`` alone would leave their relative order to construction
    # accidents (all slices were built before any instant).
    ordered.sort(key=lambda item: (item[0], item[1]))
    trace_events = [item[2] for item in ordered]

    metadata = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "simkernel"},
    }]
    for cpu in sorted({e["tid"] for e in trace_events}):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": cpu,
            "args": {"name": f"cpu {cpu}"},
        })

    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms"}


def write_chrome(events, path, task_names=None):
    """Serialise the Chrome trace to ``path`` (str/Path or file object)."""
    document = chrome_trace(events, task_names=task_names)
    if hasattr(path, "write"):
        json.dump(document, path)
    else:
        with open(path, "w") as fh:
            json.dump(document, fh)
    return document


def ftrace_lines(events, task_names=None):
    """Yield one ftrace-style text line per event."""
    for event in events:
        comm = _task_name(task_names, event.pid)
        pid = event.pid if event.pid is not None else 0
        cpu = event.cpu if event.cpu >= 0 else 0
        fields = " ".join(f"{k}={v}" for k, v in event.args)
        if event.cost_ns:
            fields = f"cost_ns={event.cost_ns} {fields}".strip()
        suffix = f" {fields}" if fields else ""
        yield (f"{comm:>16s}-{pid:<5d} [{cpu:03d}] "
               f"{event.t_ns / 1e9:12.6f}: {event.kind}:{suffix}")


def write_ftrace(events, path, task_names=None):
    """Write the ftrace-style text log to ``path``."""
    lines = ftrace_lines(events, task_names=task_names)
    if hasattr(path, "write"):
        for line in lines:
            path.write(line + "\n")
        return
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
