"""Per-callback profiling of Enoki scheduler message handlers.

Reproduces the spirit of the paper's overhead ablation (section 5.2's
"100-150 ns of overhead per invocation"): for every ``EnokiScheduler``
trait method dispatched through Enoki-C, the profiler accumulates

* **virtual time** — the modelled kernel cost the dispatch charges into
  the simulation (constant per hook, from :class:`SimConfig`), and
* **wall time** — how long the Python handler actually took, with a
  log-bucketed histogram so ``repro stats`` can print p50/p90/p99/p999
  per callback.

Enoki-C consults a single ``profiler`` attribute before dispatch; when it
is None (the default) the fast path does no extra work, so benchmark
numbers are unaffected unless profiling is switched on.
"""

from repro.obs.metrics import Histogram


class CallbackProfile:
    """Accumulated cost of one trait method (e.g. ``pick_next_task``)."""

    __slots__ = ("hook", "count", "virtual_ns", "wall_ns", "wall_hist")

    def __init__(self, hook):
        self.hook = hook
        self.count = 0
        self.virtual_ns = 0
        self.wall_ns = 0
        self.wall_hist = Histogram(f"enoki.{hook}.wall_ns")

    def note(self, virtual_ns, wall_ns):
        self.count += 1
        self.virtual_ns += virtual_ns
        self.wall_ns += wall_ns
        self.wall_hist.record(wall_ns)

    @property
    def mean_virtual_ns(self):
        return self.virtual_ns / self.count if self.count else 0.0


class CallbackProfiler:
    """Profiles every message dispatched into one (or more) schedulers."""

    def __init__(self):
        self.hooks = {}             # trait method name -> CallbackProfile
        self.policies = set()       # policies that fed this profiler
        self._shims = []

    # -- wiring ----------------------------------------------------------

    def install(self, shim):
        """Start profiling an :class:`EnokiSchedClass` shim."""
        shim.profiler = self
        self._shims.append(shim)
        return self

    def uninstall(self):
        for shim in self._shims:
            if shim.profiler is self:
                shim.profiler = None
        self._shims = []

    # -- ingestion (called by Enoki-C on every dispatch) ------------------

    def note(self, hook, virtual_ns, wall_ns, policy=None):
        profile = self.hooks.get(hook)
        if profile is None:
            profile = self.hooks[hook] = CallbackProfile(hook)
        profile.note(virtual_ns, wall_ns)
        if policy is not None:
            self.policies.add(policy)

    # -- aggregation -----------------------------------------------------

    def total_calls(self):
        return sum(p.count for p in self.hooks.values())

    def total_virtual_ns(self):
        """Modelled kernel time spent inside scheduler callbacks."""
        return sum(p.virtual_ns for p in self.hooks.values())

    def total_wall_ns(self):
        return sum(p.wall_ns for p in self.hooks.values())

    def publish(self, registry, prefix="enoki"):
        """Feed the accumulated totals into a :class:`MetricsRegistry`."""
        for hook, profile in sorted(self.hooks.items()):
            registry.counter(f"{prefix}.calls.{hook}").inc(profile.count)
            registry.gauge(
                f"{prefix}.virtual_ns.{hook}").set(profile.virtual_ns)
            hist = registry.histogram(f"{prefix}.wall_ns.{hook}")
            for index, n in profile.wall_hist.buckets.items():
                hist.buckets[index] = hist.buckets.get(index, 0) + n
            hist.count += profile.wall_hist.count
            hist.sum += profile.wall_hist.sum
            for bound in ("min", "max"):
                theirs = getattr(profile.wall_hist, bound)
                ours = getattr(hist, bound)
                if theirs is not None and (
                        ours is None
                        or (bound == "min" and theirs < ours)
                        or (bound == "max" and theirs > ours)):
                    setattr(hist, bound, theirs)
        registry.counter(f"{prefix}.calls.total").inc(self.total_calls())
        registry.gauge(
            f"{prefix}.virtual_ns.total").set(self.total_virtual_ns())

    def report(self):
        """Per-callback latency table (wall-time percentiles in us)."""
        lines = [
            f"  {'callback':<24s} {'calls':>8s} {'virt us':>10s} "
            f"{'wall p50':>9s} {'wall p90':>9s} {'wall p99':>9s} "
            f"{'wall p999':>9s}"
        ]
        for hook, profile in sorted(self.hooks.items()):
            q = profile.wall_hist.quantiles()
            lines.append(
                f"  {hook:<24s} {profile.count:>8d} "
                f"{profile.virtual_ns / 1e3:>10.1f} "
                f"{q['p50'] / 1e3:>9.3f} {q['p90'] / 1e3:>9.3f} "
                f"{q['p99'] / 1e3:>9.3f} {q['p999'] / 1e3:>9.3f}"
            )
        total = (f"  {'TOTAL':<24s} {self.total_calls():>8d} "
                 f"{self.total_virtual_ns() / 1e3:>10.1f}")
        lines.append(total)
        return "\n".join(lines)
