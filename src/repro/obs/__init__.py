"""Unified observability for the Enoki reproduction.

Everything the paper's methodology needs to *see* a scheduler: the typed
event taxonomy captured by the kernel trace hook
(:mod:`repro.simkernel.tracing`), a metrics registry with counters,
gauges, and log-bucketed latency histograms (:mod:`~repro.obs.metrics`),
a per-callback profiler for Enoki message handlers
(:mod:`~repro.obs.profiler`), and exporters to Chrome trace-event JSON
(Perfetto-loadable) and ftrace-style text (:mod:`~repro.obs.export`).

:class:`~repro.obs.observer.Observer` ties them together::

    from repro.obs import Observer

    observer = Observer.attach(kernel)
    ... run workload ...
    print(observer.report())
    observer.export_chrome("trace.json")

With no observer attached every hook site is a single ``is None`` test —
the null-hook fast path keeps disabled-tracing overhead near zero.
"""

from repro.obs.accounting import (
    KernelAccounting,
    merge_accounting_snapshots,
    task_delay_row,
)
from repro.obs.export import (
    chrome_trace,
    ftrace_lines,
    write_chrome,
    write_ftrace,
)
from repro.obs.fleet import (
    fleet_snapshot,
    machine_gauges,
    merge_fleet_accounting,
    merge_fleet_wakeup_latency,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_registry_snapshots,
)
from repro.obs.observer import Observer
from repro.obs.profiler import CallbackProfile, CallbackProfiler
from repro.obs.telemetry import (
    SLOMonitor,
    SLOTarget,
    TelemetrySampler,
    build_report,
    latency_heatmap,
    render_report_markdown,
    render_top_frame,
    timeseries_csv,
)

__all__ = [
    "CallbackProfile",
    "CallbackProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelAccounting",
    "MetricsRegistry",
    "Observer",
    "SLOMonitor",
    "SLOTarget",
    "TelemetrySampler",
    "build_report",
    "chrome_trace",
    "fleet_snapshot",
    "ftrace_lines",
    "latency_heatmap",
    "machine_gauges",
    "merge_fleet_accounting",
    "merge_fleet_wakeup_latency",
    "merge_accounting_snapshots",
    "merge_histogram_snapshots",
    "merge_registry_snapshots",
    "render_report_markdown",
    "render_top_frame",
    "task_delay_row",
    "timeseries_csv",
    "write_chrome",
    "write_ftrace",
]
