"""Unified observability for the Enoki reproduction.

Everything the paper's methodology needs to *see* a scheduler: the typed
event taxonomy captured by the kernel trace hook
(:mod:`repro.simkernel.tracing`), a metrics registry with counters,
gauges, and log-bucketed latency histograms (:mod:`~repro.obs.metrics`),
a per-callback profiler for Enoki message handlers
(:mod:`~repro.obs.profiler`), and exporters to Chrome trace-event JSON
(Perfetto-loadable) and ftrace-style text (:mod:`~repro.obs.export`).

:class:`~repro.obs.observer.Observer` ties them together::

    from repro.obs import Observer

    observer = Observer.attach(kernel)
    ... run workload ...
    print(observer.report())
    observer.export_chrome("trace.json")

With no observer attached every hook site is a single ``is None`` test —
the null-hook fast path keeps disabled-tracing overhead near zero.
"""

from repro.obs.export import (
    chrome_trace,
    ftrace_lines,
    write_chrome,
    write_ftrace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.profiler import CallbackProfile, CallbackProfiler

__all__ = [
    "CallbackProfile",
    "CallbackProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "chrome_trace",
    "ftrace_lines",
    "write_chrome",
    "write_ftrace",
]
