"""Continuous telemetry: windowed time-series, SLO monitors, live views.

Where :mod:`repro.obs.accounting` answers "what happened so far",
this module answers "what is happening *now*": a virtual-time
:class:`TelemetrySampler` rides the kernel's timer subsystem and closes a
telemetry window every ``interval_ns``, snapshotting inline accounting
into per-window deltas — utilisation, switch/steal/wakeup/migration
rates, run-queue depth peaks, a per-window wakeup-latency histogram, and
the top tasks by CPU time.  Each window is plain data, so the series
exports to CSV/JSON, renders as a terminal frame (``repro top``), bins
into a latency heatmap, and merges across sharded kernels.

An :class:`SLOMonitor` evaluates declarative targets against every
window's derived metrics and emits ``slo_violation`` trace events plus
registry counters — the signal bus a meta-scheduling control loop (the
ROADMAP's agentic-OS item) subscribes to.

Design constraints, in order:

* **Zero perturbation.**  The sampler only *reads*; open busy/run
  segments are closed arithmetically (see
  :func:`repro.obs.accounting.cpu_rows`), never by forcing
  ``update_curr``, so attaching telemetry cannot change a single
  scheduling decision.
* **No livelock.**  ``run_until_idle`` drains the event heap; a timer
  that re-arms forever would keep the simulation alive forever.  The
  sampler cancels its own periodic chain at the first window boundary
  where no task is left alive (the same cancel-from-callback pattern the
  dispatcher's ``stop_tick`` uses).
* **Bounded memory.**  Windows are retained in a ring
  (``retain`` windows, default 4096) with a dropped counter, like the
  trace ring.
"""

import io
from collections import deque

from repro.obs.accounting import KernelAccounting, cpu_rows, task_delay_row
from repro.obs.metrics import Histogram
from repro.simkernel.task import TaskState

#: default window retention (ring size)
RETAIN_DEFAULT = 4096


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------

class SLOTarget:
    """One declarative service-level objective over window metrics.

    ``metric`` names a key of the window's ``metrics`` dict (e.g.
    ``wakeup_p99_ns``, ``utilisation``, ``rq_depth_max``,
    ``policy7_share``); ``max``/``min`` bound it from above/below.
    """

    __slots__ = ("name", "metric", "max", "min")

    def __init__(self, name, metric, max=None, min=None):
        if max is None and min is None:
            raise ValueError(f"SLO {name!r} needs a max or min bound")
        self.name = name
        self.metric = metric
        self.max = max
        self.min = min

    @classmethod
    def from_dict(cls, spec):
        return cls(spec["name"], spec["metric"],
                   max=spec.get("max"), min=spec.get("min"))

    def to_dict(self):
        out = {"name": self.name, "metric": self.metric}
        if self.max is not None:
            out["max"] = self.max
        if self.min is not None:
            out["min"] = self.min
        return out

    def check(self, metrics):
        """Return a violation dict, or None when the window meets the SLO."""
        value = metrics.get(self.metric)
        if value is None:
            return None
        if self.max is not None and value > self.max:
            return {"slo": self.name, "metric": self.metric,
                    "value": value, "bound": self.max, "kind": "max"}
        if self.min is not None and value < self.min:
            return {"slo": self.name, "metric": self.metric,
                    "value": value, "bound": self.min, "kind": "min"}
        return None


class SLOMonitor:
    """Evaluates a set of :class:`SLOTarget` per telemetry window."""

    def __init__(self, targets, registry=None):
        self.targets = [t if isinstance(t, SLOTarget)
                        else SLOTarget.from_dict(t) for t in targets]
        self.registry = registry
        self.windows_evaluated = 0
        self.violations_by_slo = {t.name: 0 for t in self.targets}

    def evaluate(self, kernel, window_index, end_ns, metrics):
        """Check every target; trace + count violations; return them."""
        self.windows_evaluated += 1
        violations = []
        for target in self.targets:
            violation = target.check(metrics)
            if violation is None:
                continue
            violation["window"] = window_index
            violations.append(violation)
            self.violations_by_slo[target.name] += 1
            if kernel.trace is not None:
                kernel.trace("slo_violation", t=end_ns, cpu=-1,
                             slo=target.name, metric=target.metric,
                             value=violation["value"],
                             bound=violation["bound"])
            if self.registry is not None:
                self.registry.counter("slo.violations").inc()
                self.registry.counter(f"slo.{target.name}.violations").inc()
        return violations

    def summary(self):
        """Per-target verdicts for reports: met iff zero violations."""
        return {
            "windows": self.windows_evaluated,
            "targets": [
                {**t.to_dict(),
                 "violations": self.violations_by_slo[t.name],
                 "met": self.violations_by_slo[t.name] == 0}
                for t in self.targets
            ],
        }


# ----------------------------------------------------------------------
# the sampler
# ----------------------------------------------------------------------

class TelemetrySampler:
    """Fixed-interval windowed snapshots of inline accounting.

    Use :meth:`attach` (arms the periodic timer immediately) and run the
    workload; windows accumulate in ``self.windows``.  ``on_window`` is
    called with each closed window — ``repro top`` renders frames from
    it live, mid-``run_until_idle``.
    """

    def __init__(self, kernel, interval_ns, slos=(), registry=None,
                 retain=RETAIN_DEFAULT, top_k=5, on_window=None):
        if interval_ns <= 0:
            raise ValueError(f"non-positive interval: {interval_ns}")
        self.kernel = kernel
        self.interval_ns = interval_ns
        self.top_k = top_k
        self.on_window = on_window
        self.windows = deque(maxlen=retain)
        self.dropped = 0
        self.monitor = SLOMonitor(slos, registry=registry) if slos else None
        acct = kernel.accounting
        self._own_accounting = acct is None
        self.accounting = (KernelAccounting.attach(kernel)
                           if acct is None else acct)
        self._timer = None
        self._saw_tasks = False
        # Cumulative readings at the last window boundary.
        self._prev = None
        self._prev_hist = Histogram("window_base")
        self._prev_task_run = {}
        self._task_done = set()
        self.started_ns = -1

    @classmethod
    def attach(cls, kernel, interval_ns, **kw):
        sampler = cls(kernel, interval_ns, **kw)
        sampler.start()
        return sampler

    # -- lifecycle -------------------------------------------------------

    def start(self):
        if self._timer is not None:
            return self
        self.started_ns = self.kernel.now
        self._prev = self._cumulative()
        self._prev_hist = self.accounting.wakeup_latency.copy()
        self.accounting.take_window_depth_peak()
        self._timer = self.kernel.timers.arm_periodic(
            self.interval_ns, self._on_tick, tag="telemetry")
        return self

    def stop(self):
        """Cancel the timer and close a final partial window if time has
        advanced past the last boundary (post-episode flush)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._prev is not None and self.kernel.now > self._prev["end_ns"]:
            self._close_window(self.kernel.now)
        if self._own_accounting:
            self.accounting.detach()

    # -- the periodic callback ------------------------------------------

    def _on_tick(self, timer):
        self._close_window(self.kernel.now)
        kernel = self.kernel
        alive = any(t.state != TaskState.DEAD
                    for t in kernel.tasks.values())
        if alive:
            self._saw_tasks = True
        elif self._saw_tasks or kernel.tasks:
            # The episode is over: stop re-arming so ``run_until_idle``
            # can drain.  (A sampler started before any task spawns keeps
            # ticking until it has seen the workload come and go.)
            timer.cancel()
            self._timer = None

    # -- window construction --------------------------------------------

    def _cumulative(self):
        """Side-effect-free cumulative readings at ``kernel.now``."""
        kernel = self.kernel
        stats = kernel.stats
        rows = cpu_rows(kernel)
        return {
            "end_ns": kernel.now,
            "cpus": rows,
            "wakeups": stats.total_wakeups,
            "migrations": stats.total_migrations,
            "failed_migrations": stats.failed_migrations,
            "sched_invocations": stats.sched_invocations,
            "hint_drops": stats.hint_drops,
            "run_ns_by_policy": dict(self.accounting.run_ns_by_policy),
            "groups": ({g.name: (g.total_runtime_ns, g.throttle_count)
                        for g in kernel.groups.all_groups()}
                       if kernel.groups.has_groups() else {}),
        }

    def _task_run_deltas(self, now):
        """Per-task CPU time consumed this window (adjusted, read-only)."""
        deltas = []
        prev = self._prev_task_run
        done = self._task_done
        for pid, task in self.kernel.tasks.items():
            if pid in done:
                continue
            run = task.sum_exec_runtime_ns
            if (task.state == TaskState.RUNNING
                    and task.exec_start_ns < now):
                run += now - task.exec_start_ns
            delta = run - prev.get(pid, 0)
            prev[pid] = run
            if task.state == TaskState.DEAD:
                # Final window for this task; stop scanning it afterwards.
                done.add(pid)
                del prev[pid]
            if delta > 0:
                deltas.append((delta, pid, task))
        deltas.sort(key=lambda d: (-d[0], d[1]))
        return [
            {"pid": pid, "name": task.name, "policy": task.policy,
             "state": task.state.value, "run_ns": delta}
            for delta, pid, task in deltas[:self.top_k]
        ]

    def _close_window(self, end_ns):
        prev = self._prev
        cur = self._cumulative()
        span = end_ns - prev["end_ns"]
        if span <= 0:
            return
        nr_cpus = len(cur["cpus"])
        cpu_windows = []
        busy_delta_total = 0
        runnable = 0
        for before, after in zip(prev["cpus"], cur["cpus"]):
            busy = after["busy_ns"] - before["busy_ns"]
            busy_delta_total += busy
            runnable += after["nr_running"]
            cpu_windows.append({
                "cpu": after["cpu"],
                "busy_ns": busy,
                "switches": after["switches"] - before["switches"],
                "steals": after["steals"] - before["steals"],
                "nr_running": after["nr_running"],
            })
        # Window-delta wakeup histogram: cumulative minus the boundary
        # copy (bucket counts are monotone, so the difference is itself a
        # valid histogram).
        window_hist = self.accounting.wakeup_latency.copy("window")
        base = self._prev_hist
        for index, count in base.buckets.items():
            remaining = window_hist.buckets[index] - count
            if remaining:
                window_hist.buckets[index] = remaining
            else:
                del window_hist.buckets[index]
        window_hist.count -= base.count
        window_hist.sum -= base.sum
        if window_hist.count == 0:
            window_hist.min = window_hist.max = None
        policy_delta = {}
        for policy, ns in cur["run_ns_by_policy"].items():
            delta = ns - prev["run_ns_by_policy"].get(policy, 0)
            if delta:
                policy_delta[policy] = delta
        policy_total = sum(policy_delta.values())
        machine = {
            "busy_ns": busy_delta_total,
            "switches": sum(c["switches"] for c in cpu_windows),
            "steals": sum(c["steals"] for c in cpu_windows),
            "wakeups": cur["wakeups"] - prev["wakeups"],
            "migrations": cur["migrations"] - prev["migrations"],
            "failed_migrations": (cur["failed_migrations"]
                                  - prev["failed_migrations"]),
            "sched_invocations": (cur["sched_invocations"]
                                  - prev["sched_invocations"]),
            "hint_drops": cur["hint_drops"] - prev["hint_drops"],
            "runnable": runnable,
        }
        metrics = {
            "utilisation": busy_delta_total / (span * nr_cpus),
            "wakeup_count": window_hist.count,
            "wakeup_p50_ns": window_hist.percentile(50),
            "wakeup_p99_ns": window_hist.percentile(99),
            "wakeup_p999_ns": window_hist.percentile(99.9),
            "wakeup_max_ns": window_hist.max or 0,
            "rq_depth_max": self.accounting.take_window_depth_peak(),
            "runnable": runnable,
        }
        for policy, delta in sorted(policy_delta.items()):
            metrics[f"policy{policy}_share"] = (
                delta / policy_total if policy_total else 0.0)
        index = len(self.windows) + self.dropped
        window = {
            "index": index,
            "start_ns": prev["end_ns"],
            "end_ns": end_ns,
            "span_ns": span,
            "machine": machine,
            "cpus": cpu_windows,
            "wakeup_latency": window_hist.snapshot(),
            "run_ns_by_policy": {str(p): d
                                 for p, d in sorted(policy_delta.items())},
            "top_tasks": self._task_run_deltas(end_ns),
            "metrics": metrics,
        }
        if cur["groups"]:
            group_windows = {}
            for name, (run, throttles) in cur["groups"].items():
                prev_run, prev_thr = prev["groups"].get(name, (0, 0))
                group = self.kernel.groups.group(name)
                group_windows[name] = {
                    "run_ns": run - prev_run,
                    "throttles": throttles - prev_thr,
                    "parked": len(group.parked),
                    "throttled": group.throttled,
                }
            window["groups"] = group_windows
        if self.monitor is not None:
            window["slo_violations"] = self.monitor.evaluate(
                self.kernel, index, end_ns, metrics)
        if len(self.windows) == self.windows.maxlen:
            self.dropped += 1
        self.windows.append(window)
        self._prev = cur
        self._prev_hist = self.accounting.wakeup_latency.copy()
        if self.on_window is not None:
            self.on_window(window)

    # -- readout ---------------------------------------------------------

    def summary(self):
        """Deterministic roll-up for bench result files."""
        windows = list(self.windows)
        out = {
            "interval_ns": self.interval_ns,
            "windows": len(windows) + self.dropped,
            "windows_dropped": self.dropped,
            "wakeup_latency": self.accounting.wakeup_latency.snapshot(),
            "series": {
                "end_ns": [w["end_ns"] for w in windows],
                "utilisation": [round(w["metrics"]["utilisation"], 6)
                                for w in windows],
                "wakeup_p99_ns": [w["metrics"]["wakeup_p99_ns"]
                                  for w in windows],
                "runnable": [w["metrics"]["runnable"] for w in windows],
            },
        }
        if self.monitor is not None:
            out["slo"] = self.monitor.summary()
        return out


# ----------------------------------------------------------------------
# derived views: heatmap, CSV, terminal frames, reports
# ----------------------------------------------------------------------

def latency_heatmap(windows, key="wakeup_latency"):
    """Bin per-window latency histograms into a windows x octaves grid.

    Columns are powers of two of nanoseconds (log-bucket octaves), rows
    are windows; cell values are sample counts.  The octave coarsening
    keeps the grid narrow enough to render while preserving the shape a
    tail-latency regression shows up as.
    """
    from repro.obs.metrics import _bucket_bounds

    octaves = set()
    per_window = []
    for window in windows:
        counts = {}
        for index, count in window[key].get("buckets", []):
            lower, _upper = _bucket_bounds(index)
            octave = lower.bit_length()     # 2^(o-1) <= lower < 2^o
            counts[octave] = counts.get(octave, 0) + count
            octaves.add(octave)
        per_window.append(counts)
    columns = sorted(octaves)
    return {
        "octave_upper_bounds_ns": [1 << o for o in columns],
        "window_end_ns": [w["end_ns"] for w in windows],
        "rows": [[counts.get(o, 0) for o in columns]
                 for counts in per_window],
    }


TIMESERIES_COLUMNS = (
    "index", "start_ns", "end_ns", "utilisation", "runnable",
    "wakeup_count", "wakeup_p50_ns", "wakeup_p99_ns", "wakeup_max_ns",
    "switches", "steals", "wakeups", "migrations", "rq_depth_max",
)


def timeseries_csv(windows):
    """The window series as CSV text (stable column order)."""
    out = io.StringIO()
    out.write(",".join(TIMESERIES_COLUMNS) + "\n")
    for window in windows:
        metrics = window["metrics"]
        machine = window["machine"]
        row = {
            "index": window["index"],
            "start_ns": window["start_ns"],
            "end_ns": window["end_ns"],
            "utilisation": round(metrics["utilisation"], 6),
            "runnable": metrics["runnable"],
            "wakeup_count": metrics["wakeup_count"],
            "wakeup_p50_ns": round(metrics["wakeup_p50_ns"]),
            "wakeup_p99_ns": round(metrics["wakeup_p99_ns"]),
            "wakeup_max_ns": metrics["wakeup_max_ns"],
            "switches": machine["switches"],
            "steals": machine["steals"],
            "wakeups": machine["wakeups"],
            "migrations": machine["migrations"],
            "rq_depth_max": metrics["rq_depth_max"],
        }
        out.write(",".join(str(row[c]) for c in TIMESERIES_COLUMNS) + "\n")
    return out.getvalue()


def render_top_frame(window, width=72):
    """One ``repro top`` frame: machine line, per-CPU bars, top tasks."""
    metrics = window["metrics"]
    machine = window["machine"]
    span_ms = window["span_ns"] / 1e6
    lines = [
        f"window {window['index']:<4d} "
        f"t={window['end_ns'] / 1e6:10.3f} ms  (span {span_ms:.3f} ms)",
        f"util {metrics['utilisation'] * 100:5.1f}%  "
        f"runnable {metrics['runnable']:<3d} "
        f"switches {machine['switches']:<6d} "
        f"wakeups {machine['wakeups']:<6d} "
        f"migrations {machine['migrations']:<4d} "
        f"rq-depth-max {metrics['rq_depth_max']}",
        f"wakeup latency: p50 {metrics['wakeup_p50_ns'] / 1e3:8.1f} us  "
        f"p99 {metrics['wakeup_p99_ns'] / 1e3:8.1f} us  "
        f"max {metrics['wakeup_max_ns'] / 1e3:8.1f} us  "
        f"(n={metrics['wakeup_count']})",
    ]
    violations = window.get("slo_violations") or []
    for violation in violations:
        lines.append(
            f"  !! SLO {violation['slo']}: {violation['metric']}="
            f"{violation['value']:.0f} breaches {violation['kind']} "
            f"{violation['bound']}"
        )
    bar_width = 30
    span = window["span_ns"]
    lines.append("  cpu  util " + " " * (bar_width - 4)
                 + "  switches  steals  nr_run")
    for cpu in window["cpus"]:
        share = min(1.0, cpu["busy_ns"] / span) if span else 0.0
        bar = "#" * round(share * bar_width)
        lines.append(
            f"  {cpu['cpu']:>3d} {share * 100:5.1f}% |{bar:<{bar_width}s}| "
            f"{cpu['switches']:>8d} {cpu['steals']:>7d} "
            f"{cpu['nr_running']:>7d}"
        )
    groups = window.get("groups")
    if groups:
        capacity = span * len(window["cpus"])
        lines.append("  task groups (window CPU share):")
        for name, row in sorted(groups.items()):
            share = row["run_ns"] / capacity if capacity else 0.0
            state = "THROTTLED" if row["throttled"] else ""
            lines.append(
                f"    {name:<20.20s} {share * 100:6.1f}% "
                f"throttles {row['throttles']:<3d} "
                f"parked {row['parked']:<3d} {state}"
            )
    if window["top_tasks"]:
        lines.append("  top tasks (window CPU time):")
        for task in window["top_tasks"]:
            share = task["run_ns"] / span if span else 0.0
            lines.append(
                f"    {task['pid']:>5d} {task['name']:<20.20s} "
                f"pol {task['policy']:<3d} {task['state']:<9s}"
                f"{share * 100:6.1f}% ({task['run_ns']} ns)"
            )
    return "\n".join(line[:width * 2] for line in lines)


def build_report(kernel, sampler=None, meta=None):
    """Post-episode summary: accounting + SLO verdicts + heatmap.

    Plain data, rendered to JSON by the CLI (``repro report --json``) or
    markdown via :func:`render_report_markdown`.
    """
    acct = (sampler.accounting if sampler is not None
            else kernel.accounting)
    report = {
        "kind": "repro.obs report",
        "episode": dict(meta or {}),
        "now_ns": kernel.now,
    }
    report["episode"].setdefault("simulated_ns", kernel.now)
    if acct is not None:
        snap = acct.snapshot()
        report["machine"] = snap["machine"]
        report["cpus"] = snap["cpus"]
        report["tasks"] = sorted(snap["tasks"], key=lambda t: t["pid"])
        report["wakeup_latency"] = snap["wakeup_latency"]
        report["run_ns_by_policy"] = snap["run_ns_by_policy"]
    else:
        report["tasks"] = sorted(
            (task_delay_row(t, kernel.now) for t in kernel.tasks.values()),
            key=lambda t: t["pid"])
        report["cpus"] = cpu_rows(kernel)
    if sampler is not None:
        windows = list(sampler.windows)
        report["telemetry"] = sampler.summary()
        report["windows"] = windows
        report["heatmap"] = latency_heatmap(windows)
        if sampler.monitor is not None:
            report["slo"] = sampler.monitor.summary()
    return report


def render_report_markdown(report):
    """Human-readable (markdown) form of :func:`build_report` output."""
    lines = [f"# {report['kind']}", ""]
    episode = report.get("episode", {})
    if episode:
        lines.append("## episode")
        for key, value in sorted(episode.items()):
            lines.append(f"- {key}: {value}")
        lines.append("")
    if "machine" in report:
        lines.append("## machine")
        for key, value in sorted(report["machine"].items()):
            lines.append(f"- {key}: {value}")
        lines.append("")
    hist = report.get("wakeup_latency")
    if hist and hist.get("count"):
        lines.append("## wakeup latency (ns)")
        lines.append(
            f"- n={hist['count']} mean={hist['mean']:.0f} "
            f"p50={hist['p50']:.0f} p99={hist['p99']:.0f} "
            f"max={hist['max']}")
        lines.append("")
    slo = report.get("slo")
    if slo:
        lines.append(f"## SLO verdicts ({slo['windows']} windows)")
        for target in slo["targets"]:
            verdict = "MET" if target["met"] else \
                f"VIOLATED x{target['violations']}"
            bound = (f"max={target['max']}" if "max" in target
                     else f"min={target['min']}")
            lines.append(
                f"- {target['name']}: {target['metric']} {bound} "
                f"-> {verdict}")
        lines.append("")
    tasks = report.get("tasks") or []
    if tasks:
        lines.append("## per-task delay accounting (ns)")
        lines.append("| pid | name | policy | run | wait | sleep | block "
                     "| slices | migr | wakeups |")
        lines.append("|---|---|---|---|---|---|---|---|---|---|")
        for task in tasks:
            lines.append(
                f"| {task['pid']} | {task['name']} | {task['policy']} "
                f"| {task['run_ns']} | {task['wait_ns']} "
                f"| {task['sleep_ns']} | {task['block_ns']} "
                f"| {task['timeslices']} | {task['migrations']} "
                f"| {task['wakeups']} |")
        lines.append("")
    cpus = report.get("cpus") or []
    if cpus:
        lines.append("## per-CPU")
        lines.append("| cpu | busy_ns | idle_ns | switches | steals |")
        lines.append("|---|---|---|---|---|")
        for cpu in cpus:
            lines.append(
                f"| {cpu['cpu']} | {cpu['busy_ns']} | {cpu['idle_ns']} "
                f"| {cpu['switches']} | {cpu['steals']} |")
        lines.append("")
    telemetry = report.get("telemetry")
    if telemetry:
        lines.append(
            f"## telemetry: {telemetry['windows']} windows @ "
            f"{telemetry['interval_ns']} ns")
        series = telemetry["series"]
        if series["end_ns"]:
            util = series["utilisation"]
            lines.append(
                f"- utilisation: first={util[0]:.3f} last={util[-1]:.3f} "
                f"peak={max(util):.3f}")
            p99 = series["wakeup_p99_ns"]
            lines.append(
                f"- wakeup p99 (ns): first={p99[0]:.0f} "
                f"last={p99[-1]:.0f} peak={max(p99):.0f}")
        lines.append("")
    return "\n".join(lines)
