"""Cluster-wide observability: merge N machines into one fleet view.

Each :class:`~repro.cluster.machine.ClusterMachine` carries the full
single-machine observability stack (inline accounting, telemetry
windows, SLO monitor).  This module folds those per-machine views into
one fleet snapshot using the associative merges the obs layer already
guarantees (:func:`merge_accounting_snapshots`,
:func:`merge_histogram_snapshots`) plus per-machine gauges — which
machine is up, how loaded, how faulty — so ``repro cluster`` and the
bench cache get a single deterministic payload for the whole fleet.
"""

from repro.obs.accounting import merge_accounting_snapshots
from repro.obs.metrics import merge_histogram_snapshots


def machine_gauges(machine):
    """Flat per-machine gauges for tables and health dashboards."""
    gauges = machine.snapshot()
    session = machine.session
    if session is not None and session.telemetry is not None:
        telemetry = session.telemetry
        gauges["telemetry_windows"] = (len(telemetry.windows)
                                       + telemetry.dropped)
        if telemetry.monitor is not None:
            gauges["slo_violations"] = sum(
                telemetry.monitor.violations_by_slo.values())
            gauges["slo"] = telemetry.monitor.summary()
    return gauges


def merge_fleet_accounting(machines):
    """One accounting snapshot for the whole fleet.

    Machines are disjoint kernels (distinct CPUs, distinct pid spaces),
    which is exactly the shard semantics
    :func:`merge_accounting_snapshots` is specified for; machine indices
    are prefixed into CPU/task rows so the merged rows stay
    attributable.  Down machines contribute nothing — their kernels are
    gone, which is the honest reading of a crash.
    """
    merged = None
    for machine in machines:
        session = machine.session
        if session is None or session.telemetry is None:
            continue
        snap = session.telemetry.accounting.snapshot()
        snap = dict(snap)
        snap["cpus"] = [{**row, "machine": machine.index}
                        for row in snap["cpus"]]
        snap["tasks"] = [{**row, "machine": machine.index}
                         for row in snap["tasks"]]
        merged = (snap if merged is None
                  else merge_accounting_snapshots(merged, snap))
    return merged


def merge_fleet_wakeup_latency(machines):
    """Fleet-wide wakeup-latency histogram (bucket-exact merge)."""
    merged = None
    for machine in machines:
        session = machine.session
        if session is None or session.telemetry is None:
            continue
        snap = session.telemetry.accounting.wakeup_latency.snapshot()
        merged = (snap if merged is None
                  else merge_histogram_snapshots(merged, snap))
    return merged


#: additive fields in a ``TaskGroup.snapshot()`` row
_GROUP_SUM_FIELDS = ("total_runtime_ns", "throttle_count", "throttled_ns",
                     "periods", "parked")


def merge_fleet_groups(machines):
    """Per-task-group rollups across the fleet, keyed by group name.

    A tenant usually spans machines under one group name, so rows merge
    by name: additive counters sum, the per-period consumption watermark
    takes the fleet max, ``throttled`` counts currently-throttled
    instances, and ``machines`` counts contributors.  Down machines
    contribute nothing; the result is ``{}`` when no machine defines
    task groups.
    """
    merged = {}
    for machine in machines:
        session = machine.session
        if session is None:
            continue
        for name, snap in session.kernel.groups.snapshot().items():
            row = merged.get(name)
            if row is None:
                row = dict(snap)
                row["throttled"] = int(bool(snap["throttled"]))
                row["machines"] = 1
                merged[name] = row
                continue
            for field in _GROUP_SUM_FIELDS:
                row[field] += snap[field]
            row["max_period_consumed_ns"] = max(
                row["max_period_consumed_ns"],
                snap["max_period_consumed_ns"])
            row["throttled"] += int(bool(snap["throttled"]))
            row["machines"] += 1
    return merged


def fleet_snapshot(fleet):
    """The full cluster-wide observability payload.

    Combines the router ledger roll-up, membership gauges, the merged
    accounting/histogram view of every live machine, and per-machine
    gauges.  Everything derives from virtual time and seeded state, so
    the payload is deterministic and cacheable.
    """
    health = fleet.health.gauges()
    per_machine = []
    for machine in fleet.machines:
        gauges = machine_gauges(machine)
        gauges["health"] = health.get(machine.index, {})
        per_machine.append(gauges)
    return {
        "cluster_ns": fleet.now_ns,
        "rounds": fleet.rounds,
        "router": fleet.router.summary(),
        "accounting": merge_fleet_accounting(fleet.machines),
        "wakeup_latency": merge_fleet_wakeup_latency(fleet.machines),
        "groups": merge_fleet_groups(fleet.machines),
        "per_machine": per_machine,
    }
