"""Schedstat-style kernel accounting: the inline (trace-free) path.

Linux keeps scheduler statistics two ways: delay accounting updated
inline in ``kernel/sched/`` (``/proc/<pid>/schedstat``, taskstats) and
tracepoint-driven tooling layered on top.  This module is the
reproduction's inline path.  Two tiers:

* **Always-on delay accounting** lives directly in the kernel structs
  (:class:`~repro.simkernel.task.TaskStats` ``wait_ns``/``sleep_ns``/
  ``block_ns``/``timeslices``, :class:`~repro.simkernel.stats.CpuStats`
  ``steals``) and is maintained by ``DispatchEngine``/
  ``MigrationService``/``LifecycleManager`` with plain integer ops — no
  tracer, no observer, no histogram.  :func:`task_delay_row` reads it
  out, closing any open segment at ``now`` so live tasks report too.

* **Optional aggregation** (:class:`KernelAccounting`) attaches to
  ``kernel.accounting`` and is fed from three gated hook sites (one
  ``is None`` test each, the exact pattern ``kernel.trace`` uses):
  wakeup-latency histogram at dispatch, per-policy run time at
  ``update_curr``, run-queue-depth watermarks at enqueue.  A kernel
  that never attaches one pays only the ``is None`` tests, so the
  ``_hot`` fast path stays intact.

Snapshots are plain data and merge exactly across sharded kernels
(:func:`merge_accounting_snapshots`), pairing with
:func:`repro.obs.metrics.merge_registry_snapshots` for fleet roll-ups.
"""

from repro.obs.metrics import Histogram, merge_histogram_snapshots
from repro.simkernel.task import TaskState


def task_delay_row(task, now):
    """Delay-accounting readout for one task, as of ``now``.

    Open segments (a live task is always inside exactly one of run /
    wait / sleep / block) are closed at ``now`` so the four components
    sum to the task's lifetime span.  For DEAD tasks every segment is
    already closed and the sum is exact; for live tasks a dispatch in
    flight (``exec_start_ns`` in the future) can leave the sum a few
    context-switch-costs off — the "± rounding" the report tolerates.
    """
    stats = task.stats
    run_ns = task.sum_exec_runtime_ns
    wait_ns = stats.wait_ns
    sleep_ns = stats.sleep_ns
    block_ns = stats.block_ns
    if task.state == TaskState.RUNNING and task.exec_start_ns < now:
        run_ns += now - task.exec_start_ns
    if stats.wait_since_ns >= 0:
        wait_ns += max(0, now - stats.wait_since_ns)
    if stats.block_since_ns >= 0:
        open_ns = max(0, now - stats.block_since_ns)
        if stats.block_is_sleep:
            sleep_ns += open_ns
        else:
            block_ns += open_ns
    end_ns = stats.finished_ns if stats.finished_ns >= 0 else now
    return {
        "pid": task.pid,
        "name": task.name,
        "policy": task.policy,
        "state": task.state.value,
        "run_ns": run_ns,
        "wait_ns": wait_ns,
        "sleep_ns": sleep_ns,
        "block_ns": block_ns,
        "span_ns": max(0, end_ns - stats.created_ns),
        "timeslices": stats.timeslices,
        "migrations": stats.migrations,
        "preemptions": stats.preemptions,
        "wakeups": stats.wakeups,
        "avg_wakeup_latency_ns": stats.mean_wakeup_latency_ns,
    }


def cpu_rows(kernel, now=None):
    """Per-CPU utilisation readout with open busy/idle segments closed.

    Side-effect free: unlike forcing ``update_curr``, reading adjusted
    values never perturbs vruntime granularity, so attaching telemetry
    cannot change scheduling decisions.
    """
    now = kernel.now if now is None else now
    rows = []
    for cpu_stats in kernel.stats.cpus:
        rq = kernel.rqs[cpu_stats.cpu]
        busy = cpu_stats.busy_ns
        idle = cpu_stats.idle_ns
        cur = rq.current
        if cur is not None and cur.exec_start_ns < now:
            busy += now - cur.exec_start_ns
        elif cur is None and rq.idle_since_ns >= 0:
            idle += now - rq.idle_since_ns
        rows.append({
            "cpu": cpu_stats.cpu,
            "busy_ns": busy,
            "idle_ns": idle,
            "switches": cpu_stats.switches,
            "steals": cpu_stats.steals,
            "nr_running": rq.nr_running,
        })
    return rows


class KernelAccounting:
    """Gated aggregation fed inline from the schedule path."""

    def __init__(self):
        self.kernel = None
        self.wakeup_latency = Histogram("wakeup_latency_ns")
        self.run_ns_by_policy = {}
        self.rq_depth_peak = None     # per-CPU high watermarks, episode-wide
        self.rq_depth_window_peak = 0  # resettable (TelemetrySampler windows)
        self.enqueues = 0

    @classmethod
    def attach(cls, kernel):
        acct = cls()
        acct.kernel = kernel
        acct.rq_depth_peak = [0] * kernel.topology.nr_cpus
        kernel.accounting = acct
        return acct

    def take_window_depth_peak(self):
        """Read and reset the cross-CPU depth peak since the last call."""
        peak = self.rq_depth_window_peak
        self.rq_depth_window_peak = 0
        return peak

    def detach(self):
        """Stop being fed from the hook sites.  The kernel back-reference
        is kept so post-episode snapshots/reports still read out."""
        if self.kernel is not None and self.kernel.accounting is self:
            self.kernel.accounting = None

    # -- hook sites (called from the kernel core, gated on ``is None``) --

    def note_wakeup(self, latency_ns):
        self.wakeup_latency.record(latency_ns)

    def note_run(self, policy, delta_ns):
        by_policy = self.run_ns_by_policy
        by_policy[policy] = by_policy.get(policy, 0) + delta_ns

    def note_enqueue(self, cpu, depth):
        self.enqueues += 1
        if depth > self.rq_depth_peak[cpu]:
            self.rq_depth_peak[cpu] = depth
        if depth > self.rq_depth_window_peak:
            self.rq_depth_window_peak = depth

    # -- readout ---------------------------------------------------------

    def snapshot(self):
        """Plain-data dump: machine totals, per-CPU rows, per-task delay
        rows, the wakeup-latency distribution (with buckets, so two
        shards' snapshots merge exactly)."""
        kernel = self.kernel
        now = kernel.now
        stats = kernel.stats
        rows = cpu_rows(kernel, now)
        for row in rows:
            row["rq_depth_peak"] = self.rq_depth_peak[row["cpu"]]
        return {
            "now_ns": now,
            "machine": {
                "busy_ns": sum(r["busy_ns"] for r in rows),
                "switches": sum(r["switches"] for r in rows),
                "steals": sum(r["steals"] for r in rows),
                "wakeups": stats.total_wakeups,
                "migrations": stats.total_migrations,
                "failed_migrations": stats.failed_migrations,
                "sched_invocations": stats.sched_invocations,
                "hint_drops": stats.hint_drops,
                "enqueues": self.enqueues,
            },
            "cpus": rows,
            "tasks": [task_delay_row(t, now)
                      for t in kernel.tasks.values()],
            "wakeup_latency": self.wakeup_latency.snapshot(),
            "run_ns_by_policy": {str(p): ns for p, ns
                                 in sorted(self.run_ns_by_policy.items())},
        }


def merge_accounting_snapshots(a, b):
    """Merge two :meth:`KernelAccounting.snapshot` dumps exactly.

    Shard semantics: each snapshot describes a disjoint kernel (distinct
    CPUs and tasks), so machine counters sum, task/CPU rows concatenate,
    per-policy run time sums, and the wakeup histograms merge bucket-wise.
    Associative, like every merge in this layer.
    """
    machine = dict(a["machine"])
    for key, value in b["machine"].items():
        machine[key] = machine.get(key, 0) + value
    policies = dict(a["run_ns_by_policy"])
    for policy, ns in b["run_ns_by_policy"].items():
        policies[policy] = policies.get(policy, 0) + ns
    return {
        "now_ns": max(a["now_ns"], b["now_ns"]),
        "machine": machine,
        "cpus": list(a["cpus"]) + list(b["cpus"]),
        "tasks": list(a["tasks"]) + list(b["tasks"]),
        "wakeup_latency": merge_histogram_snapshots(
            a["wakeup_latency"], b["wakeup_latency"]),
        "run_ns_by_policy": dict(sorted(policies.items())),
    }
