"""Counters, gauges, and log-bucketed latency histograms.

The registry is the substrate's ``/proc``-style metrics surface: the
kernel trace hook, the callback profiler, and workloads all feed it, and
``repro stats`` renders it.  Histograms use HdrHistogram-style log2
bucketing with sub-buckets, so percentiles up to p999 are available at a
bounded relative error (at most 1/8 with the default 8 sub-buckets per
octave) while
ingestion stays O(1) with a small fixed memory footprint — the property
the paper's overhead ablation needs from in-kernel telemetry.
"""

#: sub-bucket resolution: 2**SUBBUCKET_BITS linear slots per power of two
SUBBUCKET_BITS = 4
_SUB = 1 << SUBBUCKET_BITS          # values below this are binned exactly
_HALF = _SUB >> 1


def _bucket_index(value):
    """Map a non-negative int to its log-bucket index (monotone)."""
    if value < _SUB:
        return value
    shift = value.bit_length() - SUBBUCKET_BITS
    # The top SUBBUCKET_BITS bits (MSB always set) select the sub-bucket.
    return _SUB + shift * _HALF + ((value >> shift) - _HALF)


def _bucket_bounds(index):
    """Inverse of :func:`_bucket_index`: [lower, upper) of one bucket."""
    if index < _SUB:
        return index, index + 1
    shift, sub = divmod(index - _SUB, _HALF)
    lower = (_HALF + sub) << shift
    return lower, lower + (1 << shift)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def add(self, delta):
        self.value += delta

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Log-bucketed distribution of non-negative integer samples."""

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name):
        self.name = name
        self.buckets = {}           # bucket index -> sample count
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def record(self, value):
        value = int(value)
        if value < 0:
            value = 0
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p):
        """The value at percentile ``p`` (0..100), interpolated inside the
        containing bucket.  Returns 0.0 for an empty histogram."""
        if not self.count:
            return 0.0
        if p <= 0:
            return float(self.min)
        if p >= 100:
            return float(self.max)
        target = p / 100.0 * self.count
        seen = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if seen + in_bucket >= target:
                lower, upper = _bucket_bounds(index)
                fraction = (target - seen) / in_bucket
                value = lower + (upper - lower) * fraction
                return float(min(max(value, self.min), self.max))
            seen += in_bucket
        return float(self.max)

    def quantiles(self):
        """The standard latency summary: p50/p90/p99/p999."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def snapshot(self):
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min or 0,
            "max": self.max or 0,
            "mean": self.mean,
        }
        out.update(self.quantiles())
        return out

    def __repr__(self):
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first touch."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def snapshot(self):
        """Plain-data dump of every metric (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def render(self):
        """Human-readable report used by ``repro stats``."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name, counter in sorted(self.counters.items()):
                lines.append(f"  {name:<42s} {counter.value}")
        if self.gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self.gauges.items()):
                lines.append(f"  {name:<42s} {gauge.value}")
        if self.histograms:
            lines.append("histograms (ns):")
            header = (f"  {'name':<34s} {'count':>8s} {'mean':>10s} "
                      f"{'p50':>10s} {'p90':>10s} {'p99':>10s} {'p999':>10s}")
            lines.append(header)
            for name, hist in sorted(self.histograms.items()):
                q = hist.quantiles()
                lines.append(
                    f"  {name:<34s} {hist.count:>8d} {hist.mean:>10.0f} "
                    f"{q['p50']:>10.0f} {q['p90']:>10.0f} "
                    f"{q['p99']:>10.0f} {q['p999']:>10.0f}"
                )
        return "\n".join(lines)
