"""Counters, gauges, and log-bucketed latency histograms.

The registry is the substrate's ``/proc``-style metrics surface: the
kernel trace hook, the callback profiler, and workloads all feed it, and
``repro stats`` renders it.  Histograms use HdrHistogram-style log2
bucketing with sub-buckets, so percentiles up to p999 are available at a
bounded relative error (at most 1/8 with the default 8 sub-buckets per
octave) while
ingestion stays O(1) with a small fixed memory footprint — the property
the paper's overhead ablation needs from in-kernel telemetry.

Every metric is **mergeable**: :meth:`Histogram.merge` folds another
histogram's buckets in exactly (bucket counts are integers, so the merge
is lossless and associative), and the snapshot-level helpers
(:func:`merge_histogram_snapshots`, :func:`merge_registry_snapshots`)
do the same over the plain-data dumps — the substrate N sharded kernels
use to aggregate fleet-wide telemetry without sharing live objects.
"""

#: sub-bucket resolution: 2**SUBBUCKET_BITS linear slots per power of two
SUBBUCKET_BITS = 4
_SUB = 1 << SUBBUCKET_BITS          # values below this are binned exactly
_HALF = _SUB >> 1


def _bucket_index(value):
    """Map a non-negative int to its log-bucket index (monotone)."""
    if value < _SUB:
        return value
    shift = value.bit_length() - SUBBUCKET_BITS
    # The top SUBBUCKET_BITS bits (MSB always set) select the sub-bucket.
    return _SUB + shift * _HALF + ((value >> shift) - _HALF)


def _bucket_bounds(index):
    """Inverse of :func:`_bucket_index`: [lower, upper) of one bucket."""
    if index < _SUB:
        return index, index + 1
    shift, sub = divmod(index - _SUB, _HALF)
    lower = (_HALF + sub) << shift
    return lower, lower + (1 << shift)


def _percentile_from_buckets(buckets, count, lo, hi, p):
    """Percentile ``p`` over a bucket-index -> count map.

    Shared by live histograms and merged snapshots so both agree exactly.
    Returns 0.0 when the distribution is empty.
    """
    if not count:
        return 0.0
    if p <= 0:
        return float(lo)
    if p >= 100:
        return float(hi)
    target = p / 100.0 * count
    seen = 0
    for index in sorted(buckets):
        in_bucket = buckets[index]
        if seen + in_bucket >= target:
            lower, upper = _bucket_bounds(index)
            fraction = (target - seen) / in_bucket
            value = lower + (upper - lower) * fraction
            return float(min(max(value, lo), hi))
        seen += in_bucket
    return float(hi)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value, with min/max watermarks.

    The watermarks track every value the gauge has ever held (hint-ring
    pressure and run-queue depth need high-watermarks — the peak matters
    even when the last-set value is back to zero).
    """

    __slots__ = ("name", "value", "min_value", "max_value")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.min_value = None
        self.max_value = None

    def set(self, value):
        self.value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def add(self, delta):
        self.set(self.value + delta)

    def snapshot(self):
        return {
            "value": self.value,
            "min": self.min_value if self.min_value is not None else 0,
            "max": self.max_value if self.max_value is not None else 0,
        }

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Log-bucketed distribution of non-negative integer samples."""

    __slots__ = ("name", "buckets", "count", "sum", "min", "max")

    def __init__(self, name):
        self.name = name
        self.buckets = {}           # bucket index -> sample count
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def record(self, value):
        value = int(value)
        if value < 0:
            value = 0
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other):
        """Fold ``other``'s samples into this histogram, losslessly.

        Bucket counts are integers, so merging is exact and associative:
        ``merge(a, b)`` then ``merge(ab, c)`` equals any other grouping.
        Returns ``self`` for chaining.
        """
        buckets = self.buckets
        for index, in_bucket in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + in_bucket
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def copy(self, name=None):
        """An independent duplicate (merge targets shouldn't alias)."""
        out = Histogram(name if name is not None else self.name)
        out.buckets = dict(self.buckets)
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p):
        """The value at percentile ``p`` (0..100), interpolated inside the
        containing bucket.  Returns 0.0 for an empty histogram."""
        return _percentile_from_buckets(self.buckets, self.count,
                                        self.min, self.max, p)

    def quantiles(self):
        """The standard latency summary: p50/p90/p99/p999."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def snapshot(self):
        """Plain-data dump.  ``buckets`` carries the full distribution
        (sorted ``[index, count]`` pairs), so snapshots merge losslessly
        via :func:`merge_histogram_snapshots` and JSON round-trips keep
        the heatmap/merge fidelity."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min or 0,
            "max": self.max or 0,
            "mean": self.mean,
            "buckets": [[index, self.buckets[index]]
                        for index in sorted(self.buckets)],
        }
        out.update(self.quantiles())
        return out

    @classmethod
    def from_snapshot(cls, snap, name=""):
        """Rebuild a live histogram from a :meth:`snapshot` dump."""
        out = cls(name)
        out.buckets = {int(i): int(n) for i, n in snap.get("buckets", [])}
        out.count = snap.get("count", 0)
        out.sum = snap.get("sum", 0)
        if out.count:
            out.min = snap.get("min", 0)
            out.max = snap.get("max", 0)
        return out

    def __repr__(self):
        return f"Histogram({self.name!r}, n={self.count})"


def merge_histogram_snapshots(a, b):
    """Merge two histogram snapshot dicts exactly.

    Works on the plain-data form (so it composes across process and JSON
    boundaries) and is associative: bucket counts, totals, and extremes
    are integer sums/min/max, and the derived stats are recomputed from
    the merged buckets.
    """
    merged = Histogram.from_snapshot(a)
    merged.merge(Histogram.from_snapshot(b))
    return merged.snapshot()


def merge_registry_snapshots(a, b):
    """Merge two :meth:`MetricsRegistry.snapshot` dumps.

    Fleet-aggregation semantics: counters sum, gauge values sum (their
    watermarks take the elementwise min/max), histograms merge exactly.
    Metric names present in only one snapshot pass through unchanged.
    """
    counters = dict(a.get("counters", {}))
    for name, value in b.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = {}
    a_gauges = a.get("gauges", {})
    b_gauges = b.get("gauges", {})
    for name in set(a_gauges) | set(b_gauges):
        ga = a_gauges.get(name)
        gb = b_gauges.get(name)
        if ga is None or gb is None:
            gauges[name] = dict(ga if ga is not None else gb)
            continue
        gauges[name] = {
            "value": ga["value"] + gb["value"],
            "min": min(ga["min"], gb["min"]),
            "max": max(ga["max"], gb["max"]),
        }
    histograms = {}
    a_hists = a.get("histograms", {})
    b_hists = b.get("histograms", {})
    for name in set(a_hists) | set(b_hists):
        ha = a_hists.get(name)
        hb = b_hists.get(name)
        if ha is None or hb is None:
            histograms[name] = dict(ha if ha is not None else hb)
            continue
        histograms[name] = merge_histogram_snapshots(ha, hb)
    return {"counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items()))}


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first touch."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def snapshot(self):
        """Plain-data dump of every metric (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: g.snapshot() for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def render(self):
        """Human-readable report used by ``repro stats``."""
        lines = []
        if self.counters:
            lines.append("counters:")
            for name, counter in sorted(self.counters.items()):
                lines.append(f"  {name:<42s} {counter.value}")
        if self.gauges:
            lines.append("gauges (value / min / max):")
            for name, gauge in sorted(self.gauges.items()):
                lo = gauge.min_value if gauge.min_value is not None else 0
                hi = gauge.max_value if gauge.max_value is not None else 0
                lines.append(f"  {name:<42s} {gauge.value} / {lo} / {hi}")
        if self.histograms:
            lines.append("histograms (ns):")
            header = (f"  {'name':<34s} {'count':>8s} {'mean':>10s} "
                      f"{'p50':>10s} {'p90':>10s} {'p99':>10s} {'p999':>10s}")
            lines.append(header)
            for name, hist in sorted(self.histograms.items()):
                q = hist.quantiles()
                lines.append(
                    f"  {name:<34s} {hist.count:>8d} {hist.mean:>10.0f} "
                    f"{q['p50']:>10.0f} {q['p90']:>10.0f} "
                    f"{q['p99']:>10.0f} {q['p999']:>10.0f}"
                )
        return "\n".join(lines)
