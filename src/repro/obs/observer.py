"""The one-stop observability attach point.

``Observer.attach(kernel)`` wires every layer of the stack at once:

* installs itself as the kernel trace hook (it *is* a
  :class:`~repro.simkernel.tracing.SchedTracer`, so all tracer queries —
  ``timeline``, ``busy_ns``, ``events_of_kind`` — work on it);
* finds every loaded Enoki shim and installs a
  :class:`~repro.obs.profiler.CallbackProfiler` on it;
* hooks each scheduler's quiesce read-write lock so acquisitions appear
  in the event stream;
* maintains a :class:`~repro.obs.metrics.MetricsRegistry` fed live with
  per-kind event counters and dispatch-cost histograms, and on
  :meth:`collect` with the kernel's aggregate statistics and per-task
  wakeup-latency distributions.

Detaching restores the null-hook fast path everywhere, so a kernel that
never attaches an Observer pays only a handful of ``is None`` tests —
benchmark numbers are unaffected (see ``bench_ablation_overhead``).

The same attach point powers verification:
:class:`~repro.verify.sanitizers.SanitizerSuite` subclasses ``Observer``
to run invariant checkers (token discipline, task conservation, lock
order, hint-ring accounting) over the event stream it already receives.
"""

from repro.obs.export import write_chrome, write_ftrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import CallbackProfiler
from repro.simkernel.tracing import SchedTracer


class Observer(SchedTracer):
    """Full-stack tracer + metrics + profilers for one kernel."""

    def __init__(self, capacity=200_000, kinds=None, registry=None):
        super().__init__(capacity, kinds=kinds)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.profilers = {}         # policy -> CallbackProfiler
        self._hooked_rwlocks = []
        self._observed_shims = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, kernel, capacity=200_000, kinds=None):
        """Install on ``kernel`` and instrument every loaded Enoki shim."""
        observer = super().attach(kernel, capacity, kinds=kinds)
        observer.observe_framework()
        return observer

    def observe_framework(self):
        """(Re)discover Enoki shims on the attached kernel and instrument
        them.  Call again after registering a scheduler post-attach."""
        kernel = self._kernel
        if kernel is None:
            return
        for _prio, sched_class in kernel._classes:
            lib = getattr(sched_class, "lib", None)
            if lib is None or not hasattr(sched_class, "profiler"):
                continue                      # not an Enoki shim
            if sched_class in self._observed_shims:
                continue
            profiler = self.profilers.get(sched_class.policy)
            if profiler is None:
                profiler = CallbackProfiler()
                self.profilers[sched_class.policy] = profiler
            profiler.install(sched_class)
            self._observed_shims.append(sched_class)
            rwlock = lib.rwlock
            if rwlock.on_event is None:
                rwlock.on_event = self._rwlock_hook
                self._hooked_rwlocks.append(rwlock)

    def detach(self):
        for rwlock in self._hooked_rwlocks:
            if rwlock.on_event == self._rwlock_hook:
                rwlock.on_event = None
        self._hooked_rwlocks = []
        for profiler in self.profilers.values():
            profiler.uninstall()
        self._observed_shims = []
        super().detach()

    # ------------------------------------------------------------------
    # event ingestion
    # ------------------------------------------------------------------

    def _hook(self, kind, **fields):
        super()._hook(kind, **fields)
        registry = self.registry
        registry.counter("events." + kind).inc()
        if kind == "dispatch":
            registry.histogram("kernel.dispatch_cost_ns").record(
                fields.get("cost", 0))
        elif kind == "enoki_msg":
            registry.histogram("enoki.msg_wall_ns").record(
                fields.get("wall_ns", 0))
        elif kind == "hint_enqueue":
            # The gauge's max watermark is the peak ring pressure.
            registry.gauge("enoki.hint_ring_depth").set(
                fields.get("depth", 0))
        elif kind == "slo_violation":
            registry.counter(
                "slo.traced." + str(fields.get("slo", "?"))).inc()
        elif kind == "enoki_panic":
            registry.counter("containment.panics").inc()
            registry.counter(
                "containment.panic." + fields.get("hook", "?")).inc()
        elif kind == "failover":
            registry.counter("containment.failovers").inc()
        elif kind == "throttle":
            registry.counter("group_throttles").inc()
            registry.counter(
                "groups." + str(fields.get("group", "?"))
                + ".throttles").inc()
        elif kind == "quota_refill":
            registry.counter("group_refills").inc()
        elif kind == "watchdog_finding":
            registry.counter(
                "watchdog." + fields.get("finding", "?")).inc()

    def _rwlock_hook(self, op, name):
        kernel = self._kernel
        if kernel is None:
            return
        self._hook("rwlock_" + op, t=kernel.now, cpu=-1, lock=name)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def collect(self):
        """Pull kernel aggregate stats into the registry; returns it."""
        kernel = self._kernel
        registry = self.registry
        if kernel is None:
            return registry
        stats = kernel.stats
        registry.gauge("kernel.total_wakeups").set(stats.total_wakeups)
        registry.gauge("kernel.total_migrations").set(stats.total_migrations)
        registry.gauge("kernel.failed_migrations").set(
            stats.failed_migrations)
        registry.gauge("kernel.pick_errors").set(stats.pick_errors)
        registry.gauge("kernel.sched_invocations").set(
            stats.sched_invocations)
        registry.gauge("kernel.hint_drops").set(stats.hint_drops)
        registry.gauge("kernel.contained_panics").set(
            stats.contained_panics)
        registry.gauge("kernel.failovers").set(stats.failovers)
        registry.gauge("kernel.busy_ns_total").set(stats.busy_ns_total())
        registry.gauge("kernel.now_ns").set(kernel.now)
        for cpu_stats in stats.cpus:
            prefix = f"cpu{cpu_stats.cpu}"
            registry.gauge(f"kernel.{prefix}.busy_ns").set(cpu_stats.busy_ns)
            registry.gauge(f"kernel.{prefix}.idle_ns").set(cpu_stats.idle_ns)
            registry.gauge(f"kernel.{prefix}.switches").set(
                cpu_stats.switches)
            registry.gauge(f"kernel.{prefix}.steals").set(cpu_stats.steals)
            registry.gauge(f"kernel.{prefix}.nr_running").set(
                kernel.rqs[cpu_stats.cpu].nr_running)
        for name, snap in sorted(kernel.groups.snapshot().items()):
            prefix = f"groups.{name}"
            registry.gauge(f"{prefix}.runtime_ns").set(
                snap["total_runtime_ns"])
            registry.gauge(f"{prefix}.weight").set(snap["weight"])
            registry.gauge(f"{prefix}.throttled_ns").set(
                snap["throttled_ns"])
            registry.gauge(f"{prefix}.parked").set(snap["parked"])
            if snap["quota_ns"]:
                registry.gauge(f"{prefix}.quota_ns").set(snap["quota_ns"])
                registry.gauge(f"{prefix}.periods").set(snap["periods"])
                registry.gauge(f"{prefix}.max_period_consumed_ns").set(
                    snap["max_period_consumed_ns"])
        latency_hist = registry.histogram("task.wakeup_latency_ns")
        for task in kernel.tasks.values():
            for sample in task.stats.wakeup_latencies:
                latency_hist.record(sample)
        for policy, profiler in sorted(self.profilers.items()):
            profiler.publish(registry, prefix=f"enoki.policy{policy}")
        return registry

    # ------------------------------------------------------------------
    # reporting and export
    # ------------------------------------------------------------------

    def _task_names(self):
        kernel = self._kernel
        if kernel is None:
            return {}
        return {pid: task.name for pid, task in kernel.tasks.items()}

    def report(self):
        """The ``repro stats`` text report."""
        self.collect()
        sections = []
        summary = self.summary()
        if summary:
            sections.append("events by kind:")
            sections.extend(
                f"  {kind:<24s} {count}"
                for kind, count in sorted(summary.items())
            )
        if self.dropped:
            sections.append(f"  (ring wrapped: {self.dropped} events "
                            "dropped)")
        for policy, profiler in sorted(self.profilers.items()):
            if profiler.total_calls():
                sections.append(
                    f"per-callback profile (policy {policy}):")
                sections.append(profiler.report())
        sections.append(self.registry.render())
        return "\n".join(sections)

    def export_chrome(self, path):
        """Write a Perfetto-loadable Chrome trace of everything captured."""
        return write_chrome(self.events, path,
                            task_names=self._task_names())

    def export_ftrace(self, path):
        """Write an ftrace-style text log of everything captured."""
        return write_ftrace(self.events, path,
                            task_names=self._task_names())
