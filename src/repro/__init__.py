"""Enoki (EuroSys 2024) reproduction.

The package is layered exactly as DESIGN.md describes:

* :mod:`repro.simkernel` — a discrete-event Linux-like kernel (the substrate
  standing in for the patched Linux 5.11 kernel of the paper's artifact).
* :mod:`repro.core` — the Enoki framework itself: the message-passing
  scheduler API, ``Schedulable`` ownership tokens, live upgrade, hint
  queues, and record/replay.
* :mod:`repro.schedulers` — CFS (native baseline), the Enoki WFQ / FIFO /
  Shinjuku / locality-aware / Arachne-arbiter schedulers, and the ghOSt
  comparison model.
* :mod:`repro.workloads` — the paper's benchmarks (sched-pipe, schbench,
  RocksDB-style, memcached-style, application suites).
* :mod:`repro.analysis` — result statistics and table rendering.

Quickstart::

    from repro import Kernel, Topology
    from repro.core import EnokiSchedClass
    from repro.schedulers.wfq import EnokiWfq
    from repro.workloads.pipe_bench import run_pipe_benchmark

    kernel = Kernel(Topology.small8())
    EnokiSchedClass.register(kernel, EnokiWfq(nr_cpus=8), policy=7)
    result = run_pipe_benchmark(kernel, policy=7, rounds=2000)
    print(result.latency_us_per_message)
"""

from repro.simkernel import Kernel, SimConfig, Topology

__version__ = "1.0.0"

__all__ = ["Kernel", "SimConfig", "Topology", "__version__"]
